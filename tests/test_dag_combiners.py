"""Tests for map-side combining (§3.5)."""

from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.dag.combiners import (
    Aggregator,
    combine_locally,
    group_values_iter,
    merge_combiners_iter,
    reduce_values_iter,
)

pairs = st.lists(
    st.tuples(st.integers(0, 10), st.integers(-100, 100)), max_size=60
)


def sum_agg() -> Aggregator:
    return Aggregator.from_reduce(lambda a, b: a + b)


class TestAggregatorConstruction:
    def test_from_reduce(self):
        agg = sum_agg()
        assert agg.create_combiner(5) == 5
        assert agg.merge_value(5, 3) == 8
        assert agg.merge_combiners(5, 3) == 8

    def test_from_zero(self):
        # average via (sum, count)
        agg = Aggregator.from_zero(
            zero=lambda: (0, 0),
            seq_op=lambda acc, v: (acc[0] + v, acc[1] + 1),
            comb_op=lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        c = agg.create_combiner(10)
        assert c == (10, 1)
        c = agg.merge_value(c, 20)
        assert c == (30, 2)
        assert agg.merge_combiners((30, 2), (5, 1)) == (35, 3)


class TestCombineLocally:
    def test_basic(self):
        out = combine_locally([("a", 1), ("b", 2), ("a", 3)], sum_agg())
        assert out == {"a": 4, "b": 2}

    def test_empty(self):
        assert combine_locally([], sum_agg()) == {}

    @given(pairs)
    def test_matches_counter_semantics(self, data):
        expected = Counter()
        for k, v in data:
            expected[k] += v
        assert combine_locally(data, sum_agg()) == dict(expected)


class TestReduceSideMerges:
    @given(st.lists(pairs, max_size=5))
    def test_combined_equals_uncombined(self, streams):
        """THE §3.5 invariant: map-side combining must not change results.
        Merging pre-combined streams == reducing raw streams directly."""
        agg = sum_agg()
        combined_streams = [list(combine_locally(s, agg).items()) for s in streams]
        via_combiners = dict(merge_combiners_iter(combined_streams, agg))
        via_raw = dict(reduce_values_iter(streams, agg))
        assert via_combiners == via_raw

    def test_merge_combiners(self):
        streams = [[("a", 3)], [("a", 4), ("b", 1)]]
        assert dict(merge_combiners_iter(streams, sum_agg())) == {"a": 7, "b": 1}

    def test_reduce_values(self):
        streams = [[("a", 1), ("a", 1)], [("a", 1)]]
        assert dict(reduce_values_iter(streams, sum_agg())) == {"a": 3}

    def test_group_values(self):
        streams = [[("a", 1), ("b", 2)], [("a", 3)]]
        grouped = dict(group_values_iter(streams))
        assert grouped == {"a": [1, 3], "b": [2]}

    @given(st.lists(pairs, max_size=4))
    def test_group_preserves_all_values(self, streams):
        grouped = dict(group_values_iter(streams))
        total = sum(len(vs) for vs in grouped.values())
        assert total == sum(len(s) for s in streams)


class TestCombiningShrinksShuffle:
    @given(pairs)
    def test_combined_never_larger(self, data):
        """The optimization's point: per-key combiners are never more
        records than the raw stream."""
        combined = combine_locally(data, sum_agg())
        assert len(combined) <= max(len(data), 1)

    def test_shrink_example(self):
        data = [("k", 1)] * 1000
        assert len(combine_locally(data, sum_agg())) == 1
