"""Tests for streaming sources: RecordLog, LogSource, fixed/rate sources."""

import pytest

from repro.common.errors import StreamingError
from repro.streaming.sources import (
    BatchRange,
    FixedBatchSource,
    LogSource,
    RateSource,
    RecordLog,
)


class TestRecordLog:
    def test_append_and_read(self):
        log = RecordLog(2)
        assert log.append(0, "a") == 0
        assert log.append(0, "b") == 1
        assert log.read(0, 0, 2) == ["a", "b"]
        assert log.read(0, 1, 2) == ["b"]

    def test_round_robin(self):
        log = RecordLog(3)
        log.append_round_robin(list(range(7)))
        assert log.end_offsets() == [3, 2, 2]
        assert log.read(0, 0, 3) == [0, 3, 6]

    def test_invalid_range_rejected(self):
        log = RecordLog(1)
        log.append(0, "a")
        with pytest.raises(StreamingError):
            log.read(0, 0, 5)
        with pytest.raises(StreamingError):
            log.read(0, -1, 1)
        with pytest.raises(StreamingError):
            log.read(0, 1, 0)

    def test_total_records(self):
        log = RecordLog(2)
        log.append_batch(0, ["a", "b"])
        log.append_batch(1, ["c"])
        assert log.total_records() == 3

    def test_rejects_zero_partitions(self):
        with pytest.raises(StreamingError):
            RecordLog(0)


class TestLogSource:
    def test_batches_consume_appended_data(self):
        log = RecordLog(2)
        source = LogSource(log)
        log.append_round_robin([1, 2, 3, 4])
        b0 = source.plan_batch(0)
        assert b0.total() == 4
        log.append_round_robin([5, 6])
        b1 = source.plan_batch(1)
        assert b1.total() == 2

    def test_planning_is_sticky(self):
        """Re-planning a batch (replay) returns the identical range even
        if more data arrived since — prefix integrity's foundation."""
        log = RecordLog(1)
        source = LogSource(log)
        log.append_batch(0, ["a", "b"])
        first = source.plan_batch(0)
        log.append_batch(0, ["c"])
        replay = source.plan_batch(0)
        assert replay == first

    def test_batches_must_be_planned_in_order(self):
        source = LogSource(RecordLog(1))
        with pytest.raises(StreamingError):
            source.plan_batch(3)

    def test_dataset_reads_on_worker(self):
        log = RecordLog(2)
        source = LogSource(log)
        log.append_round_robin(["a", "b", "c"])
        ds = source.dataset_for(source.plan_batch(0))
        assert list(ds.partition_fn(0)) == ["a", "c"]
        assert list(ds.partition_fn(1)) == ["b"]

    def test_forget_after_rolls_back(self):
        log = RecordLog(1)
        source = LogSource(log)
        log.append_batch(0, ["a"])
        source.plan_batch(0)
        log.append_batch(0, ["b"])
        source.plan_batch(1)
        assert source.planned_through() == 1
        source.forget_after(0)
        assert source.planned_through() == 0
        # Replanning batch 1 picks up everything appended since batch 0.
        log.append_batch(0, ["c"])
        b1 = source.plan_batch(1)
        assert b1.starts == (1,)
        assert b1.ends == (3,)

    def test_forget_all(self):
        log = RecordLog(1)
        source = LogSource(log)
        log.append_batch(0, ["a"])
        source.plan_batch(0)
        source.forget_after(-1)
        assert source.planned_through() == -1
        assert source.plan_batch(0).starts == (0,)

    def test_empty_batch_when_no_new_data(self):
        source = LogSource(RecordLog(2))
        assert source.plan_batch(0).total() == 0


class TestFixedBatchSource:
    def test_batches(self):
        source = FixedBatchSource([[1, 2, 3], [4]], num_partitions=2)
        assert source.num_batches == 2
        b0 = source.plan_batch(0)
        assert b0.total() == 3
        ds = source.dataset_for(b0)
        assert list(ds.partition_fn(0)) == [1, 3]
        assert list(ds.partition_fn(1)) == [2]

    def test_out_of_range(self):
        source = FixedBatchSource([[1]], 1)
        with pytest.raises(StreamingError):
            source.plan_batch(5)


class TestRateSource:
    def test_generates_per_batch(self):
        source = RateSource(lambda b, i: (b, i), records_per_batch=5, num_partitions=2)
        br = source.plan_batch(3)
        assert br.total() == 5
        ds = source.dataset_for(br)
        all_records = list(ds.partition_fn(0)) + list(ds.partition_fn(1))
        assert sorted(all_records) == [(3, i) for i in range(5)]

    def test_negative_rejected(self):
        with pytest.raises(StreamingError):
            RateSource(lambda b, i: i, records_per_batch=-1, num_partitions=1)


class TestBatchRange:
    def test_records_in(self):
        br = BatchRange(0, (0, 2), (3, 2))
        assert br.records_in(0) == 3
        assert br.records_in(1) == 0
        assert br.total() == 3
