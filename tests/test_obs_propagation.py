"""End-to-end trace propagation tests.

The contract under test: with tracing enabled, every micro-batch run by
the engine yields spans that stitch into *one tree per batch* — driver
stage spans, worker compute spans (via descriptor contexts through the
RPC envelope), fetch and report spans — including across simulated worker
failure and recovery.  Checkpoint/recovery paths in the streaming layer
and the continuous engine emit their own root spans.
"""

import threading
import time

import pytest

from repro.common.config import EngineConf, SchedulingMode, TracingConf, TunerConf
from repro.continuous.engine import ContinuousJob, SourceSpec
from repro.continuous.operators import MapOperator, OperatorSpec
from repro.dag.dataset import SourceDataset
from repro.dag.plan import compile_plan, dict_action
from repro.engine.cluster import LocalCluster
from repro.obs.analyze import batch_spans, build_trees, per_batch_breakdown, spans
from repro.obs.names import (
    EVENT_TASK_RESUBMIT,
    EVENT_TUNER_DECISION,
    SPAN_BATCH,
    SPAN_CHECKPOINT,
    SPAN_GROUP,
    SPAN_RECOVERY,
    SPAN_STAGE,
    SPAN_TASK_COMPUTE,
    SPAN_TASK_FETCH,
    SPAN_TASK_REPORT,
)
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.streaming.context import StreamingContext
from repro.streaming.sinks import IdempotentSink
from repro.streaming.sources import FixedBatchSource, RecordLog

from engine_test_utils import make_cluster

TRACED = TracingConf(enabled=True)


def keyed_plan(num_partitions=4, num_reducers=2, items=10, offset=0):
    """A two-stage (map -> reduce_by_key) plan over a deterministic source."""

    def partition_fn(index):
        lo = index * items
        return list(range(lo + offset, lo + items + offset))

    ds = (
        SourceDataset(partition_fn, num_partitions)
        .map(lambda x: (x % 2, x))
        .reduce_by_key(lambda a, b: a + b, num_reducers)
    )
    return compile_plan(ds, dict_action())


def slow_keyed_plan(num_partitions=8, delay_s=0.1):
    def partition_fn(index):
        time.sleep(delay_s)
        return list(range(index * 10, (index + 1) * 10))

    ds = (
        SourceDataset(partition_fn, num_partitions)
        .map(lambda x: (x % 2, x))
        .reduce_by_key(lambda a, b: a + b, 2)
    )
    return compile_plan(ds, dict_action())


def tree_names(node):
    yield node["event"]["name"]
    for child in node["children"]:
        yield from tree_names(child)


@pytest.mark.parametrize(
    "mode",
    [SchedulingMode.DRIZZLE, SchedulingMode.PER_BATCH, SchedulingMode.PRE_SCHEDULED],
)
class TestOneTreePerBatch:
    def test_multi_stage_group_stitches_into_batch_trees(self, mode):
        """A group of multi-stage batches yields exactly one span tree per
        batch, with stage spans and remote task spans inside it."""
        n_batches = 3
        with make_cluster(mode, tracing=TRACED, group_size=n_batches) as cluster:
            plans = [keyed_plan(offset=b) for b in range(n_batches)]
            cluster.run_group(plans, job_keys=[f"b{b}" for b in range(n_batches)])
        # Read spans after shutdown: a worker records its final
        # task.report span *after* the driver unblocks the client, and
        # over tcp the response round-trip reliably loses that race.
        events = cluster.tracer.events()

        batches = batch_spans(events)
        assert len(batches) == n_batches
        assert len({e["trace_id"] for e in batches}) == n_batches

        trees = build_trees(events)
        for root_event in batches:
            roots = trees[root_event["trace_id"]]
            # One tree: the batch span is the only root of its trace.
            assert [r["event"]["name"] for r in roots] == [SPAN_BATCH]
            names = list(tree_names(roots[0]))
            # Both stages and all their tasks are inside this batch's tree.
            assert names.count(SPAN_STAGE) == 2
            assert names.count(SPAN_TASK_COMPUTE) == 4 + 2  # maps + reduces
            assert names.count(SPAN_TASK_REPORT) == 4 + 2
            # Reduce-side shuffle pulls hang off the reduce compute spans.
            assert names.count(SPAN_TASK_FETCH) == 2
            assert root_event["attrs"]["mode"] == mode.value

    def test_compute_spans_run_on_workers_and_parent_to_stages(self, mode):
        with make_cluster(mode, tracing=TRACED) as cluster:
            cluster.run_plan(keyed_plan())
        events = cluster.tracer.events()

        by_id = {e["span_id"]: e for e in events}
        computes = spans(events, SPAN_TASK_COMPUTE)
        assert computes
        for c in computes:
            assert c["actor"].startswith("worker-")
            parent = by_id[c["parent_id"]]
            assert parent["name"] == SPAN_STAGE
            assert parent["attrs"]["stage"] == c["attrs"]["stage"]

    def test_report_and_fetch_parent_to_their_compute_span(self, mode):
        with make_cluster(mode, tracing=TRACED) as cluster:
            cluster.run_plan(keyed_plan())
        events = cluster.tracer.events()

        by_id = {e["span_id"]: e for e in events}
        reports = spans(events, SPAN_TASK_REPORT)
        fetches = spans(events, SPAN_TASK_FETCH)
        assert reports and fetches
        for e in reports + fetches:
            parent = by_id[e["parent_id"]]
            assert parent["name"] == SPAN_TASK_COMPUTE
            assert parent["actor"] == e["actor"]


class TestGroupAndTunerSpans:
    def test_group_span_and_shared_scheduling_attribution(self):
        n_batches = 4
        with make_cluster(
            SchedulingMode.DRIZZLE, tracing=TRACED, group_size=n_batches
        ) as cluster:
            plans = [keyed_plan(offset=b) for b in range(n_batches)]
            cluster.run_group(plans)
            events = cluster.tracer.events()

        (group,) = spans(events, SPAN_GROUP)
        assert group["parent_id"] is None
        assert group["attrs"]["num_batches"] == n_batches
        assert group["attrs"]["wall_s"] > 0

        # Group-level scheduling/launch spans carry the covered job ids,
        # and the analyzer distributes their cost across those batches.
        job_ids = {e["attrs"]["job_id"] for e in batch_spans(events)}
        group_scheds = [
            e for e in spans(events, "task.schedule") if "batches" in e["attrs"]
        ]
        assert group_scheds
        assert set(group_scheds[0]["attrs"]["batches"]) == job_ids
        rows = per_batch_breakdown(events)
        assert len(rows) == n_batches
        assert all(r["task.schedule"] > 0 for r in rows)

    def test_tuner_decisions_appear_as_instants_on_group_spans(self):
        conf_tuner = TunerConf(enabled=True)
        with make_cluster(
            SchedulingMode.DRIZZLE, tracing=TRACED, group_size=2, tuner=conf_tuner
        ) as cluster:
            for round_ in range(2):
                cluster.run_group([keyed_plan(offset=round_), keyed_plan(offset=round_ + 9)])
            events = cluster.tracer.events()

        decisions = [e for e in events if e["name"] == EVENT_TUNER_DECISION]
        assert len(decisions) == 2
        groups = {e["span_id"]: e for e in spans(events, SPAN_GROUP)}
        for d in decisions:
            assert d["ph"] == "i"
            assert d["parent_id"] in groups
            assert d["attrs"]["action"] in {"increase", "decrease", "hold"}
            assert d["attrs"]["group_size_new"] >= 1


class TestFailureRecoveryStitching:
    @pytest.mark.parametrize(
        "mode", [SchedulingMode.DRIZZLE, SchedulingMode.PRE_SCHEDULED]
    )
    def test_worker_loss_recovery_stays_in_batch_trace(self, mode):
        """Killing a worker mid-job must (a) still produce the exact
        result, (b) emit a root recovery span, and (c) keep the resubmit
        markers and re-run compute spans inside the *same* batch trace —
        the tree survives the failure."""
        with make_cluster(mode, workers=4, slots=1, tracing=TRACED) as cluster:
            plan = slow_keyed_plan()
            killer = threading.Timer(0.05, lambda: cluster.kill_worker("worker-1"))
            killer.start()
            result = cluster.run_plan(plan)
            killer.join()
        events = cluster.tracer.events()

        expected = {}
        for x in range(80):
            expected[x % 2] = expected.get(x % 2, 0) + x
        assert result == expected

        (batch,) = batch_spans(events)
        recoveries = spans(events, SPAN_RECOVERY)
        assert len(recoveries) == 1
        assert recoveries[0]["parent_id"] is None
        assert recoveries[0]["attrs"]["worker"] == "worker-1"
        assert recoveries[0]["attrs"]["resubmitted"] >= 1

        resubmits = [e for e in events if e["name"] == EVENT_TASK_RESUBMIT]
        assert resubmits
        assert all(e["trace_id"] == batch["trace_id"] for e in resubmits)

        # Surviving workers' reruns are still stitched into the batch tree:
        # more compute spans than tasks, all in the batch trace, none from
        # the dead worker after its loss.
        computes = [
            e for e in spans(events, SPAN_TASK_COMPUTE)
            if e["trace_id"] == batch["trace_id"]
        ]
        assert len(computes) > 10  # 8 maps + 2 reduces + at least one rerun
        trees = build_trees(events)
        (batch_root,) = trees[batch["trace_id"]]
        assert list(tree_names(batch_root)).count(SPAN_TASK_COMPUTE) == len(computes)


class TestStreamingSpans:
    def test_checkpoint_and_replay_spans(self):
        batches = [[f"w{i % 3}" for i in range(12)] for _ in range(4)]
        conf = EngineConf(
            num_workers=2,
            slots_per_worker=2,
            scheduling_mode=SchedulingMode.DRIZZLE,
            group_size=2,
            tracing=TRACED,
        )
        cluster = LocalCluster(conf)
        with cluster:
            ctx = StreamingContext(cluster, FixedBatchSource(batches, 2))
            store = ctx.state_store("counts")
            ctx.stream().map(lambda w: (w, 1)).reduce_by_key(
                lambda a, b: a + b, 2
            ).update_state(store, merge=lambda a, b: a + b)
            ctx.run_batches(4)
            ctx.checkpoint()
            before = dict(store.items())
            ctx.restore_and_replay()
            assert dict(store.items()) == before
            events = cluster.tracer.events()

        checkpoints = spans(events, SPAN_CHECKPOINT)
        assert checkpoints
        assert all(e["parent_id"] is None for e in checkpoints)
        assert checkpoints[-1]["attrs"]["stores"] == 1

        (recovery,) = spans(events, SPAN_RECOVERY)
        assert recovery["attrs"]["kind"] == "restore_and_replay"
        assert recovery["attrs"]["replayed"] == 0  # checkpoint was current


class TestContinuousSpans:
    def test_checkpoint_and_global_restart_spans(self):
        log = RecordLog(2)
        for i in range(60):
            log.append(i % 2, (f"k{i % 3}", 1))
        sink = IdempotentSink()
        tracer = TraceRecorder()
        job = ContinuousJob(
            source=SourceSpec(log, event_time_fn=lambda r: 0.0),
            operators=[OperatorSpec("ident", lambda: MapOperator(lambda r: r), 2)],
            sink=sink,
            tracer=tracer,
        )
        job.start()
        job.trigger_checkpoint()
        deadline = time.monotonic() + 10
        while job.completed_checkpoints() < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert job.completed_checkpoints() == 1
        job.kill_operator_instance("ident", 0)
        job.close_input_and_wait(timeout=15)
        events = tracer.events()

        committed = [
            e for e in spans(events, SPAN_CHECKPOINT) if "instances" in e["attrs"]
        ]
        assert committed
        assert committed[0]["actor"] == "jobmanager"
        assert committed[0]["attrs"]["aligned"] is True

        restarts = [
            e for e in spans(events, SPAN_RECOVERY)
            if e["attrs"].get("kind") == "global_restart"
        ]
        assert len(restarts) == 1
        assert restarts[0]["attrs"]["restored_checkpoint"] == committed[0]["attrs"][
            "checkpoint_id"
        ]


class TestTransportPropagation:
    """Trace propagation is transport-independent: the tcp backend ships
    the same Envelope (with its SpanContext) over the wire, so the span
    forest must have identical shape to the in-process transport."""

    @staticmethod
    def _parentage(mode, transport):
        with make_cluster(mode, tracing=TRACED, transport=transport) as cluster:
            cluster.run_plan(keyed_plan())
        events = cluster.tracer.events()
        by_id = {e["span_id"]: e for e in events if "span_id" in e}

        def parent_name(e):
            pid = e.get("parent_id")
            return by_id[pid]["name"] if pid in by_id else None

        return sorted(
            (e["name"], parent_name(e)) for e in events if "span_id" in e
        )

    @pytest.mark.parametrize(
        "mode",
        [SchedulingMode.DRIZZLE, SchedulingMode.PER_BATCH, SchedulingMode.PRE_SCHEDULED],
    )
    def test_span_parentage_identical_across_transports(self, mode):
        inproc = self._parentage(mode, "inproc")
        tcp = self._parentage(mode, "tcp")
        assert inproc == tcp
        # Sanity: the comparison is over a real tree, not an empty one.
        assert (SPAN_TASK_COMPUTE, SPAN_STAGE) in inproc
        assert (SPAN_TASK_REPORT, SPAN_TASK_COMPUTE) in inproc


class TestDisabledTracing:
    def test_disabled_cluster_records_nothing(self):
        with make_cluster(SchedulingMode.DRIZZLE) as cluster:
            assert cluster.tracer is NULL_RECORDER
            result = cluster.run_plan(keyed_plan())
            assert cluster.tracer.events() == []
        assert result  # the job itself still ran
