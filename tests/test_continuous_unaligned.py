"""Aligned vs unaligned checkpoints in the continuous engine (§2.2's
synchronous vs asynchronous snapshot distinction).

Aligned barriers cut a consistent snapshot → exactly-once after recovery.
Unaligned snapshots (taken on the first barrier, channels never blocked)
avoid alignment stalls but give only at-least-once: records that raced
ahead of the barrier on other channels are both inside the restored
state's future and replayed.
"""

import time

import pytest

from repro.continuous.engine import ContinuousJob, SourceSpec
from repro.continuous.operators import MapOperator, OperatorSpec, WindowAggOperator
from repro.streaming.sinks import IdempotentSink
from repro.streaming.sources import RecordLog


def make_job(log, sink, aligned, parallelism=2):
    return ContinuousJob(
        source=SourceSpec(log, event_time_fn=lambda r: r[1], watermark_every=10),
        operators=[
            OperatorSpec(
                "parse", lambda: MapOperator(lambda r: (r[0], (r[1], 1))), parallelism
            ),
            OperatorSpec(
                "window",
                lambda: WindowAggOperator(lambda a, b: a + b, 5.0),
                parallelism,
                partitioning="hash",
            ),
        ],
        sink=sink,
        aligned_checkpoints=aligned,
    )


def fill(n=400, partitions=2, keys=5):
    log = RecordLog(partitions)
    for i in range(n):
        log.append(i % partitions, (f"k{i % keys}", float(i) / 10.0))
    return log


def total_count(sink):
    return sum(c for (_k, _w, c) in sink.all_records())


class TestUnalignedNormalOperation:
    def test_no_failure_still_exact(self):
        """Without failures, unaligned checkpoints don't change results."""
        log = fill(300)
        sink = IdempotentSink()
        job = make_job(log, sink, aligned=False)
        job.start()
        time.sleep(0.05)
        job.trigger_checkpoint()
        job.close_input_and_wait(timeout=15)
        assert total_count(sink) == 300

    def test_checkpoint_completes_without_blocking(self):
        log = fill(300)
        sink = IdempotentSink()
        job = make_job(log, sink, aligned=False)
        job.start()
        time.sleep(0.05)
        job.trigger_checkpoint()
        deadline = time.monotonic() + 5
        while job.completed_checkpoints() < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert job.completed_checkpoints() == 1
        job.close_input_and_wait(timeout=15)


class TestRecoverySemantics:
    def test_aligned_exactly_once(self):
        log = fill(400)
        sink = IdempotentSink()
        job = make_job(log, sink, aligned=True)
        job.start()
        time.sleep(0.08)
        job.trigger_checkpoint()
        time.sleep(0.05)
        job.kill_operator_instance("window", 0)
        job.close_input_and_wait(timeout=20)
        assert total_count(sink) == 400

    def test_unaligned_at_least_once(self):
        """After a failure, unaligned recovery must deliver every record
        (no loss) but MAY deliver some twice."""
        log = fill(400)
        sink = IdempotentSink()
        job = make_job(log, sink, aligned=False)
        job.start()
        time.sleep(0.08)
        job.trigger_checkpoint()
        time.sleep(0.05)
        job.kill_operator_instance("window", 0)
        job.close_input_and_wait(timeout=20)
        assert total_count(sink) >= 400  # at-least-once: no record lost
