"""The elastic controller end to end: a streaming job that resizes at
group boundaries must produce results byte-identical to a fixed-size run,
with zero extra RPCs on every non-resize boundary."""

import pytest

from repro.common.config import ElasticConf, EngineConf, TelemetryConf
from repro.common.errors import ConfigError
from repro.common.metrics import (
    COUNT_ELASTIC_RESIZES,
    COUNT_ELASTIC_WORKERS_ADDED,
    COUNT_ELASTIC_WORKERS_REMOVED,
    COUNT_MIGRATION_KEYS_MOVED,
    COUNT_RPC_MESSAGES,
)
from repro.elastic.controller import ElasticController
from repro.elastic.policies import (
    ScalingDecision,
    ScheduleScalingPolicy,
    SignalScalingPolicy,
)
from repro.engine.cluster import LocalCluster
from repro.streaming.context import StreamingContext
from repro.streaming.sources import FixedBatchSource
from repro.streaming.state import ShardedStateStore

WORDS = "the quick brown fox jumps over the lazy dog again and again".split()
BATCHES = [[WORDS[(i + j) % len(WORDS)] for j in range(6)] for i in range(12)]
# The load spike: batches 4..7 carry triple traffic.
for i in range(4, 8):
    BATCHES[i] = BATCHES[i] * 3


def _run(schedule, *, shards_per_worker=2, elastic=True):
    """Streaming wordcount over BATCHES; returns (final counts, metrics
    snapshot, controller or None)."""
    conf = EngineConf(
        num_workers=2,
        group_size=2,
        elastic=ElasticConf(enabled=False, shards_per_worker=shards_per_worker),
        telemetry=TelemetryConf(enabled=True),
    )
    with LocalCluster(conf) as cluster:
        source = FixedBatchSource(BATCHES, 4)
        ctx = StreamingContext(cluster, source, batch_interval_s=0.05)
        controller = None
        if elastic:
            controller = ElasticController(
                cluster,
                policy=ScheduleScalingPolicy(schedule),
                batch_interval_s=0.05,
            )
            ctx.set_elasticity(controller)
            store = ctx.state_store("counts")
            partitioner = ctx.shard_partitioner("counts")
        else:
            store = ctx.state_store("counts")
            partitioner = None
        stream = (
            ctx.stream()
            .map(lambda w: (w, 1))
            # 4 partitions == 2 workers x 2 shards: the sharded and the
            # fixed plan have identical task structure, so rpc parity is
            # exact, not approximate.
            .reduce_by_key(lambda a, b: a + b, 4, partitioner=partitioner)
        )
        stream.update_state(store, merge=lambda a, b: a + b)
        ctx.run_batches(len(BATCHES))
        counts = sorted(store.items())
        snap = cluster.metrics.counters_snapshot()
        rollup = cluster.telemetry.rollup() if cluster.telemetry else {}
    return counts, snap, controller, rollup


class TestLoadSpikeEquivalence:
    def test_scale_out_and_back_is_byte_identical(self):
        fixed, _, _, _ = _run({}, elastic=False)
        elastic, snap, controller, rollup = _run({1: +2, 4: -2})
        assert elastic == fixed
        # The resizes really happened, and shards really moved.
        assert snap[COUNT_ELASTIC_RESIZES] == 2
        assert snap[COUNT_ELASTIC_WORKERS_ADDED] == 2
        assert snap[COUNT_ELASTIC_WORKERS_REMOVED] == 2
        assert snap[COUNT_MIGRATION_KEYS_MOVED] > 0
        deltas = [p.delta for p in controller.plans]
        assert deltas == [+2, -2]
        # Each applied plan records the epoch its shard maps flipped to.
        assert controller.plans[0].epochs[0][1] == 1
        assert controller.plans[1].epochs[0][1] == 2

    def test_rpc_parity_without_resizes(self):
        """A controller that never resizes must cost exactly zero RPCs:
        ``count.rpc_messages`` parity with the fixed-size run is +-0."""
        _, fixed_snap, _, _ = _run({}, elastic=False)
        _, elastic_snap, _, _ = _run({}, elastic=True)
        assert (
            elastic_snap[COUNT_RPC_MESSAGES] == fixed_snap[COUNT_RPC_MESSAGES]
        )

    def test_scale_events_surface_in_rollup(self):
        _, _, _, rollup = _run({1: +1, 4: -1})
        events = rollup.get("scale_events") or []
        actions = [e["action"] for e in events]
        assert "scale" in actions  # the controller's decision lines
        assert "join" in actions  # per-worker membership lines
        assert "leave" in actions
        scale_lines = [e for e in events if e["action"] == "scale"]
        assert any(e["reason"].startswith("+1:") for e in scale_lines)
        assert any(e["reason"].startswith("-1:") for e in scale_lines)


class TestControllerGuardrails:
    def test_cooldown_suppresses_consecutive_resizes(self):
        conf = ElasticConf(enabled=True, cooldown_groups=2)
        with LocalCluster(EngineConf(num_workers=2)) as cluster:
            controller = ElasticController(
                cluster,
                policy=ScheduleScalingPolicy({0: +1, 1: +1, 2: +1}),
                conf=conf,
            )
            for _ in range(3):
                controller.at_group_boundary([])
            assert [d.delta_workers for d in controller.decisions] == [1, 0, 0]
            assert "cooldown" in controller.decisions[1].reason
            assert len(controller.plans) == 1
            assert len(cluster.alive_workers()) == 3

    def test_min_max_clamp(self):
        conf = ElasticConf(enabled=True, min_workers=2, max_workers=3, cooldown_groups=0)
        with LocalCluster(EngineConf(num_workers=2)) as cluster:
            controller = ElasticController(
                cluster, policy=ScheduleScalingPolicy({0: +5, 1: -5}), conf=conf
            )
            controller.at_group_boundary([])
            assert len(cluster.driver.placement_workers()) == 3  # clamped to max
            controller.at_group_boundary([])
            assert len(cluster.driver.placement_workers()) == 2  # clamped to min
            # .decisions keeps the policy's raw ask; .plans what was applied.
            assert [d.delta_workers for d in controller.decisions] == [5, -5]
            assert [p.delta for p in controller.plans] == [1, -1]

    def test_crash_between_boundaries_repairs_layout(self):
        """delta == 0 boundaries still repair shard maps after a crash:
        the dead machine's ranges reassign from the driver mirror."""
        with LocalCluster(EngineConf(num_workers=3)) as cluster:
            controller = ElasticController(
                cluster, policy=ScheduleScalingPolicy({})
            )
            store = ShardedStateStore("s")
            for i in range(20):
                store.put(f"k{i}", i)
            controller.register_store(store)
            cluster.kill_worker("worker-2", notify_driver=True)
            decision = controller.at_group_boundary([])
            assert decision.delta_workers == 0
            final = controller.shard_map("s")
            final.validate()
            assert "worker-2" not in final.workers()


class TestSignalPolicy:
    def test_queueing_delay_is_the_leading_indicator(self):
        policy = SignalScalingPolicy(batch_interval_s=0.1, queue_delay_p99_ms=50.0)
        d = policy.decide_with_signals(
            {"queueing_delay_ms": {"p99": 120.0}}, [], current_workers=2
        )
        assert d.delta_workers == +1 and "queueing delay" in d.reason

    def test_backlog_scales_out(self):
        policy = SignalScalingPolicy(batch_interval_s=0.1, backlog_threshold=3)
        d = policy.decide_with_signals({"backlog": 7}, [], current_workers=2)
        assert d.delta_workers == +1 and "backlog" in d.reason

    def test_healthy_signals_fall_back_to_utilization(self):
        policy = SignalScalingPolicy(batch_interval_s=0.1)
        d = policy.decide_with_signals(
            {"queueing_delay_ms": {"p99": 1.0}, "backlog": 0},
            [],
            current_workers=2,
        )
        assert d.delta_workers == 0


class TestConfAndCompat:
    def test_elastic_conf_validation(self):
        for bad in (
            ElasticConf(min_workers=0),
            ElasticConf(min_workers=4, max_workers=2),
            ElasticConf(cooldown_groups=-1),
            ElasticConf(policy="nope"),
            ElasticConf(shards_per_worker=0),
        ):
            with pytest.raises(ConfigError):
                bad.validate()

    def test_auto_attach_via_conf(self):
        conf = EngineConf(
            num_workers=2, elastic=ElasticConf(enabled=True, shards_per_worker=2)
        )
        with LocalCluster(conf) as cluster:
            ctx = StreamingContext(
                cluster, FixedBatchSource([["a"]], 2), batch_interval_s=0.05
            )
            assert isinstance(ctx._elasticity, ElasticController)
            store = ctx.state_store("counts")
            assert isinstance(store, ShardedStateStore)
            assert ctx._elasticity.shard_map("counts") is not None

    def test_old_import_location_still_works(self):
        from repro.streaming import elasticity as legacy
        from repro.elastic import policies

        assert legacy.ScalingPolicy is policies.ScalingPolicy
        assert legacy.ScalingDecision is policies.ScalingDecision
        assert legacy.UtilizationScalingPolicy is policies.UtilizationScalingPolicy

    def test_legacy_advisory_controller(self):
        from repro.streaming.elasticity import ElasticityController

        class AlwaysUp:
            def decide(self, recent, current_workers):
                return ScalingDecision(+1, "test")

        with LocalCluster(EngineConf(num_workers=2)) as cluster:
            legacy = ElasticityController(cluster, AlwaysUp())
            legacy.at_group_boundary([])
            assert len(cluster.alive_workers()) == 3
            assert legacy.decisions[-1].delta_workers == 1
