"""Unit tests for the chaos layer itself: plan generation determinism and
the process-global injector (exact-hit firing, kill budget, metrics)."""

import pytest

from repro.chaos.injector import ChaosInjector, active, chaos_hit, install, uninstall
from repro.chaos.plan import (
    ALL_SITES,
    KIND_DIAL_REFUSE,
    KIND_NET_DROP,
    KIND_NET_GARBLE,
    KIND_WORKER_KILL,
    SITE_BLOCKS_FETCH,
    SITE_DRIVER,
    SITE_ELASTIC_RESIZE,
    SITE_EXEC_COMPUTE,
    SITE_NET_CALL,
    SITE_STREAM_CHECKPOINT,
    SITE_STREAM_GROUP,
    SITE_WORKER_TASK,
    FaultEvent,
    FaultPlan,
)
from repro.common.config import CHAOS_PROFILES
from repro.common.errors import ConfigError, ReproError
from repro.common.metrics import (
    COUNT_CHAOS_INJECTED,
    COUNT_CHAOS_SUPPRESSED,
    MetricsRegistry,
)

# Which sites each profile may touch (mirrors the template tables).
_PROFILE_SITES = {
    "net": {"net.dial", "net.call", "net.frame", "net.serve"},
    "workers": {SITE_WORKER_TASK, SITE_EXEC_COMPUTE},
    "storage": {SITE_BLOCKS_FETCH, SITE_WORKER_TASK},
    "streaming": {
        SITE_STREAM_CHECKPOINT,
        SITE_STREAM_GROUP,
        SITE_WORKER_TASK,
        SITE_EXEC_COMPUTE,
    },
    "elastic": {
        SITE_ELASTIC_RESIZE,
        SITE_WORKER_TASK,
        SITE_STREAM_GROUP,
        SITE_EXEC_COMPUTE,
    },
    "driver": {SITE_DRIVER, SITE_EXEC_COMPUTE},
    "mixed": set(ALL_SITES)
    - {SITE_STREAM_CHECKPOINT, SITE_STREAM_GROUP, SITE_ELASTIC_RESIZE, SITE_DRIVER},
}


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        a = FaultPlan.generate(42, "mixed")
        b = FaultPlan.generate(42, "mixed")
        assert list(a) == list(b)

    def test_seed_changes_plan(self):
        plans = [list(FaultPlan.generate(s, "mixed")) for s in range(6)]
        assert any(p != plans[0] for p in plans[1:])

    @pytest.mark.parametrize("profile", CHAOS_PROFILES)
    def test_profiles_only_use_their_sites(self, profile):
        for seed in range(8):
            plan = FaultPlan.generate(seed, profile)
            assert {e.site for e in plan} <= _PROFILE_SITES[profile]

    @pytest.mark.parametrize("profile", CHAOS_PROFILES)
    def test_guaranteed_early_event(self, profile):
        # Every plan schedules at least one fault within the first few
        # hits of a high-traffic site, so armed runs always inject.
        for seed in range(8):
            plan = FaultPlan.generate(seed, profile)
            assert any(e.at_hit <= 4 for e in plan)

    def test_intensity_scales_event_count(self):
        assert len(FaultPlan.generate(0, "mixed", intensity=0.1)) == 1
        assert len(FaultPlan.generate(0, "mixed", intensity=1.0)) == 6
        assert len(FaultPlan.generate(0, "mixed", intensity=2.0)) == 12

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError, match="profile"):
            FaultPlan.generate(0, "nope")

    def test_bad_intensity_rejected(self):
        with pytest.raises(ConfigError, match="intensity"):
            FaultPlan.generate(0, "mixed", intensity=0)

    def test_budget_burning_kinds_capped(self):
        for seed in range(20):
            plan = FaultPlan.generate(seed, "mixed", intensity=3.0)
            kinds = [e.kind for e in plan]
            assert kinds.count(KIND_NET_DROP) <= 2
            assert kinds.count(KIND_DIAL_REFUSE) <= 2
            assert kinds.count(KIND_NET_GARBLE) <= 2

    def test_one_fault_per_exact_hit(self):
        for seed in range(20):
            plan = FaultPlan.generate(seed, "mixed", intensity=2.0)
            pairs = [(e.site, e.at_hit) for e in plan]
            assert len(pairs) == len(set(pairs))

    def test_describe_names_every_event(self):
        plan = FaultPlan.generate(7, "storage")
        text = plan.describe()
        assert "seed=7" in text
        for event in plan:
            assert event.kind in text


class TestChaosInjector:
    def test_fires_on_exact_hit_only(self):
        event = FaultEvent(0, "site", "net_delay", at_hit=3, param=0.05)
        inj = ChaosInjector(FaultPlan([event]))
        assert inj.hit("site") is None
        assert inj.hit("site") is None
        assert inj.hit("site") is event
        assert inj.hit("site") is None
        assert inj.injected_count == 1
        assert "net_delay @ site hit 3" in inj.fault_log()[0]

    def test_other_sites_do_not_consume_hits(self):
        event = FaultEvent(0, "a", "net_delay", at_hit=1)
        inj = ChaosInjector(FaultPlan([event]))
        assert inj.hit("b") is None
        assert inj.hit("a") is event

    def test_metrics_counted_per_kind(self):
        metrics = MetricsRegistry()
        inj = ChaosInjector(
            FaultPlan([FaultEvent(0, "s", "block_delete", at_hit=1)]),
            metrics=metrics,
        )
        inj.hit("s", target="worker-1")
        assert metrics.counter(COUNT_CHAOS_INJECTED).value == 1
        assert metrics.counter("chaos.block_delete").value == 1

    def test_kill_budget_suppresses_extra_kills(self):
        metrics = MetricsRegistry()
        plan = FaultPlan(
            [
                FaultEvent(0, "s", KIND_WORKER_KILL, at_hit=1),
                FaultEvent(1, "s", KIND_WORKER_KILL, at_hit=2),
            ]
        )
        inj = ChaosInjector(plan, metrics=metrics, kill_budget=1)
        assert inj.hit("s") is not None
        assert inj.hit("s") is None  # budget spent: suppressed
        assert inj.injected_count == 1
        assert metrics.counter(COUNT_CHAOS_SUPPRESSED).value == 1
        assert any(log.startswith("SUPPRESSED") for log in inj.fault_log())

    def test_install_uninstall_lifecycle(self):
        inj = ChaosInjector(FaultPlan([FaultEvent(0, "s", "net_delay", at_hit=1)]))
        other = ChaosInjector(FaultPlan([]))
        assert chaos_hit("s") is None  # disarmed: free no-op
        install(inj)
        try:
            assert active() is inj
            install(inj)  # re-installing the same injector is fine
            with pytest.raises(ReproError, match="already installed"):
                install(other)
            assert chaos_hit("s") is not None
        finally:
            uninstall(other)  # not active: no-op
            assert active() is inj
            uninstall(inj)
        assert active() is None
        assert chaos_hit("s") is None
