"""Tests for the event loop and the task-level discrete-event simulator,
including cross-validation against the analytic micro-benchmark model."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.events import EventLoop
from repro.sim.microbench import MicroBenchConfig, run_microbenchmark
from repro.sim.tasksim import simulate_microbenchmark_events


class TestEventLoop:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.at(2.0, lambda: seen.append("b"))
        loop.at(1.0, lambda: seen.append("a"))
        loop.at(3.0, lambda: seen.append("c"))
        assert loop.run() == 3
        assert seen == ["a", "b", "c"]
        assert loop.now == 3.0

    def test_fifo_tie_breaking(self):
        loop = EventLoop()
        seen = []
        loop.at(1.0, lambda: seen.append(1))
        loop.at(1.0, lambda: seen.append(2))
        loop.run()
        assert seen == [1, 2]

    def test_after_relative(self):
        loop = EventLoop()
        times = []
        loop.at(5.0, lambda: loop.after(2.0, lambda: times.append(loop.now)))
        loop.run()
        assert times == [7.0]

    def test_causality_enforced(self):
        loop = EventLoop()
        loop.at(5.0, lambda: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.at(4.0, lambda: None)
        with pytest.raises(SimulationError):
            loop.after(-1.0, lambda: None)

    def test_run_until(self):
        loop = EventLoop()
        seen = []
        for t in (1.0, 2.0, 3.0):
            loop.at(t, lambda t=t: seen.append(t))
        loop.run(until=2.0)
        assert seen == [1.0, 2.0]
        assert loop.pending == 1
        loop.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_event_budget(self):
        loop = EventLoop()

        def forever():
            loop.after(1.0, forever)

        loop.at(0.0, forever)
        with pytest.raises(SimulationError):
            loop.run(max_events=100)

    def test_cascading_events(self):
        loop = EventLoop()
        count = [0]

        def step():
            count[0] += 1
            if count[0] < 10:
                loop.after(0.5, step)

        loop.at(0.0, step)
        assert loop.run() == 10
        assert loop.now == pytest.approx(4.5)


class TestCrossValidation:
    """The event-driven simulation must agree with the closed form where
    their modeling assumptions coincide (serial batches, one wave)."""

    @pytest.mark.parametrize("machines", [4, 32, 128])
    def test_spark_single_stage(self, machines):
        cfg = MicroBenchConfig(mode="spark", machines=machines)
        analytic = run_microbenchmark(cfg).time_per_batch_s
        event = simulate_microbenchmark_events(cfg).time_per_batch_s
        assert event == pytest.approx(analytic, rel=0.05)

    @pytest.mark.parametrize("machines", [4, 128])
    def test_spark_with_shuffle(self, machines):
        cfg = MicroBenchConfig(mode="spark", machines=machines, num_reducers=16)
        analytic = run_microbenchmark(cfg).time_per_batch_s
        event = simulate_microbenchmark_events(cfg).time_per_batch_s
        assert event == pytest.approx(analytic, rel=0.05)

    @pytest.mark.parametrize("machines", [4, 128])
    def test_only_pre_with_shuffle(self, machines):
        cfg = MicroBenchConfig(mode="only-pre", machines=machines, num_reducers=16)
        analytic = run_microbenchmark(cfg).time_per_batch_s
        event = simulate_microbenchmark_events(cfg).time_per_batch_s
        assert event == pytest.approx(analytic, rel=0.05)

    @pytest.mark.parametrize("group", [25, 100])
    def test_drizzle_single_stage(self, group):
        cfg = MicroBenchConfig(mode="drizzle", machines=128, group_size=group)
        analytic = run_microbenchmark(cfg).time_per_batch_s
        event = simulate_microbenchmark_events(cfg).time_per_batch_s
        # Event sim overlaps a little within groups: agreement to 20%.
        assert event == pytest.approx(analytic, rel=0.20)

    def test_drizzle_shuffle_pipelines_batches(self):
        """Known, documented divergence: within a group the event-driven
        model lets batches pipeline across slots, so grouped shuffle
        batches run FASTER than the closed form's serial accounting —
        never slower."""
        cfg = MicroBenchConfig(
            mode="drizzle", machines=128, group_size=100, num_reducers=16
        )
        analytic = run_microbenchmark(cfg).time_per_batch_s
        event = simulate_microbenchmark_events(cfg).time_per_batch_s
        assert event < analytic

    def test_mode_ordering_preserved(self):
        times = {}
        for mode, group in (("spark", 1), ("only-pre", 1), ("drizzle", 100)):
            cfg = MicroBenchConfig(mode=mode, machines=64, group_size=group)
            times[mode] = simulate_microbenchmark_events(cfg).time_per_batch_s
        assert times["drizzle"] < times["only-pre"] <= times["spark"]


class TestTaskSimBehaviour:
    def test_pipelined_rejected(self):
        with pytest.raises(SimulationError):
            simulate_microbenchmark_events(
                MicroBenchConfig(mode="pipelined", machines=4)
            )

    def test_tree_requires_shuffle(self):
        with pytest.raises(SimulationError):
            simulate_microbenchmark_events(
                MicroBenchConfig(mode="drizzle", machines=4), tree_fan_in=2
            )

    def test_traces_collected(self):
        cfg = MicroBenchConfig(mode="spark", machines=4, num_batches=2,
                               num_reducers=4)
        result = simulate_microbenchmark_events(cfg, keep_traces=True)
        maps = [t for t in result.traces if t.stage == 0]
        reds = [t for t in result.traces if t.stage == 1]
        assert len(maps) == 2 * 16
        assert len(reds) == 2 * 4
        assert all(t.started_at <= t.finished_at for t in result.traces)

    def test_multiple_waves_when_tasks_exceed_slots(self):
        cfg = MicroBenchConfig(
            mode="only-pre", machines=2, num_batches=1,
            num_map_tasks_override=24, task_compute_s=2e-3,
        )
        result = simulate_microbenchmark_events(cfg, keep_traces=True)
        starts = sorted({round(t.started_at, 6) for t in result.traces})
        # 24 maps on 8 slots -> 3 distinct start waves.
        assert len(starts) == 3

    def test_tree_reducers_start_earlier(self):
        """§3.6 at event level: with staggered map waves and spare slots,
        tree-narrowed reducers begin before all maps finish."""
        cfg = MicroBenchConfig(
            mode="only-pre", machines=4, num_batches=2, num_reducers=12,
            task_compute_s=2e-3, num_map_tasks_override=24,
        )
        base = simulate_microbenchmark_events(cfg, keep_traces=True)
        tree = simulate_microbenchmark_events(cfg, keep_traces=True, tree_fan_in=2)
        assert min(tree.reducer_start_times(0)) < min(base.reducer_start_times(0))
        assert tree.time_per_batch_s < base.time_per_batch_s

    def test_batch_completions_monotone_enough(self):
        cfg = MicroBenchConfig(mode="drizzle", machines=8, group_size=10,
                               num_batches=20)
        result = simulate_microbenchmark_events(cfg)
        assert len(result.batch_completions) == 20
        assert all(c > 0 for c in result.batch_completions)

    def test_events_processed_counted(self):
        cfg = MicroBenchConfig(mode="spark", machines=4, num_batches=5)
        result = simulate_microbenchmark_events(cfg)
        assert result.events_processed > 5 * 16  # at least one per task
