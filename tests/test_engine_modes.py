"""Engine correctness across every scheduling mode (§3.1/§3.2).

The central invariant: group scheduling and pre-scheduling are pure
control-plane changes — results must be IDENTICAL to per-batch barrier
scheduling for any DAG and any group size.
"""

import pytest

from repro.common.config import SchedulingMode
from repro.dag.dataset import from_partitions, parallelize
from repro.dag.plan import collect_action, compile_plan, count_action, dict_action
from repro.workloads.synthetic import expected_sum, sum_random_dataset, sum_random_with_shuffle

from engine_test_utils import ALL_BACKENDS, ALL_MODES, ALL_TRANSPORTS, make_cluster


@pytest.mark.parametrize("mode", ALL_MODES)
class TestModeEquivalence:
    def test_narrow_pipeline(self, mode):
        with make_cluster(mode) as cluster:
            ds = parallelize(range(50), 5).map(lambda x: x * 3).filter(lambda x: x % 2 == 0)
            assert sorted(cluster.collect(ds)) == sorted(
                x * 3 for x in range(50) if (x * 3) % 2 == 0
            )

    def test_single_shuffle(self, mode):
        with make_cluster(mode) as cluster:
            ds = parallelize(range(60), 6).map(lambda x: (x % 5, 1)).reduce_by_key(
                lambda a, b: a + b, 3
            )
            assert dict(cluster.collect(ds)) == {k: 12 for k in range(5)}

    def test_multi_stage_chain(self, mode):
        with make_cluster(mode) as cluster:
            ds = (
                parallelize(range(40), 4)
                .map(lambda x: (x % 8, x))
                .reduce_by_key(lambda a, b: a + b, 4)
                .map(lambda kv: (kv[0] % 2, kv[1]))
                .reduce_by_key(lambda a, b: a + b, 2)
            )
            out = dict(cluster.collect(ds))
            assert out[0] + out[1] == sum(range(40))

    def test_join(self, mode):
        with make_cluster(mode) as cluster:
            left = from_partitions([[("a", 1), ("b", 2)], [("c", 3)]])
            right = from_partitions([[("a", 9)], [("b", 8), ("x", 7)]])
            out = sorted(cluster.collect(left.join(right, 2)))
            assert out == [("a", (1, 9)), ("b", (2, 8))]

    def test_tree_reduce(self, mode):
        with make_cluster(mode) as cluster:
            ds = parallelize(range(64), 8).tree_reduce_stage(lambda a, b: a + b, 2)
            assert sum(cluster.collect(ds)) == sum(range(64))

    def test_count_action(self, mode):
        with make_cluster(mode) as cluster:
            ds = parallelize(range(100), 8).filter(lambda x: x < 30)
            from repro.dag.plan import compile_plan, count_action

            plan = compile_plan(ds, count_action())
            assert cluster.run_plan(plan) == 30

    def test_synthetic_microbenchmark_workload(self, mode):
        with make_cluster(mode) as cluster:
            ds = sum_random_dataset(num_tasks=6, elements_per_task=100, seed=3)
            total = sum(cluster.collect(ds))
            assert total == pytest.approx(expected_sum(6, 100, seed=3))

    def test_synthetic_shuffle_workload(self, mode):
        with make_cluster(mode) as cluster:
            ds = sum_random_with_shuffle(num_tasks=6, num_reducers=4, seed=3)
            total = sum(v for _k, v in cluster.collect(ds))
            assert total == pytest.approx(expected_sum(6, seed=3))


class TestGroupScheduling:
    @pytest.mark.parametrize("group_size", [1, 2, 5, 8])
    def test_group_results_match_sequential(self, group_size):
        def build(b):
            ds = parallelize(range(30), 3).map(lambda x, b=b: (x % 3, x + b)).reduce_by_key(
                lambda a, b: a + b, 2
            )
            return compile_plan(ds, dict_action())

        with make_cluster(SchedulingMode.DRIZZLE, group_size=group_size) as cluster:
            plans = [build(b) for b in range(6)]
            grouped = cluster.run_group(plans, job_keys=[f"b{b}" for b in range(6)])
        with make_cluster(SchedulingMode.PER_BATCH) as cluster:
            sequential = [cluster.run_plan(build(b)) for b in range(6)]
        assert grouped == sequential

    def test_heterogeneous_plans_in_one_group(self):
        """A group may contain jobs with different DAG shapes (a streaming
        app with several output operators)."""
        with make_cluster(SchedulingMode.DRIZZLE, group_size=4) as cluster:
            narrow = compile_plan(parallelize(range(10), 2).map(lambda x: x), collect_action())
            wide = compile_plan(
                parallelize(range(10), 4).map(lambda x: (x % 2, 1)).reduce_by_key(
                    lambda a, b: a + b, 2
                ),
                dict_action(),
            )
            out = cluster.run_group([narrow, wide])
            assert sorted(out[0]) == list(range(10))
            assert out[1] == {0: 5, 1: 5}

    def test_group_amortizes_launch_rpcs(self):
        """Drizzle ships one launch message per worker per group; Spark
        ships one per task per stage.  The driver launch-RPC counts must
        reflect that (this is the mechanism behind Figure 4)."""

        def build():
            ds = parallelize(range(24), 6).map(lambda x: (x % 3, 1)).reduce_by_key(
                lambda a, b: a + b, 3
            )
            return compile_plan(ds, dict_action())

        from repro.common.metrics import COUNT_LAUNCH_RPCS

        with make_cluster(SchedulingMode.DRIZZLE, workers=3, group_size=8) as cluster:
            cluster.run_group([build() for _ in range(8)])
            drizzle_rpcs = cluster.metrics.counter(COUNT_LAUNCH_RPCS).value
        with make_cluster(SchedulingMode.PER_BATCH, workers=3) as cluster:
            for _ in range(8):
                cluster.run_plan(build())
            spark_rpcs = cluster.metrics.counter(COUNT_LAUNCH_RPCS).value
        # Drizzle: <= one RPC per worker for the whole group.
        assert drizzle_rpcs <= 3
        # Spark: one RPC per task = 8 batches x (6 maps + 3 reduces).
        assert spark_rpcs == 8 * 9
        assert drizzle_rpcs < spark_rpcs / 10

    def test_launch_message_count_exact(self):
        """In Drizzle mode the driver sends exactly one launch_tasks call
        per worker for a whole group."""
        from repro.common.metrics import COUNT_GROUPS_SCHEDULED, COUNT_TASKS_LAUNCHED

        def build():
            return compile_plan(parallelize(range(8), 4).map(lambda x: x), collect_action())

        with make_cluster(SchedulingMode.DRIZZLE, workers=4, group_size=5) as cluster:
            cluster.run_group([build() for _ in range(5)])
            assert cluster.metrics.counter(COUNT_GROUPS_SCHEDULED).value == 1
            assert cluster.metrics.counter(COUNT_TASKS_LAUNCHED).value == 20


class TestClusterBasics:
    def test_context_manager_shutdown(self):
        cluster = make_cluster(SchedulingMode.DRIZZLE)
        with cluster:
            pass  # shutdown must not raise

    def test_run_defaults_to_collect(self):
        with make_cluster(SchedulingMode.DRIZZLE) as cluster:
            assert sorted(cluster.run(parallelize([3, 1, 2], 2))) == [1, 2, 3]

    def test_empty_partitions_ok(self):
        with make_cluster(SchedulingMode.DRIZZLE) as cluster:
            ds = from_partitions([[], [1], []]).map(lambda x: x + 1)
            assert cluster.collect(ds) == [2]

    def test_empty_shuffle_ok(self):
        with make_cluster(SchedulingMode.DRIZZLE) as cluster:
            ds = from_partitions([[], []]).map(lambda x: (x, x)).reduce_by_key(
                lambda a, b: a + b, 2
            )
            assert cluster.collect(ds) == []

    def test_user_error_propagates(self):
        from repro.common.errors import TaskError

        with make_cluster(SchedulingMode.DRIZZLE) as cluster:
            ds = parallelize(range(4), 2).map(lambda x: 1 // 0)
            with pytest.raises(TaskError):
                cluster.collect(ds)

    def test_user_error_propagates_barrier_mode(self):
        from repro.common.errors import TaskError

        with make_cluster(SchedulingMode.PER_BATCH) as cluster:
            ds = parallelize(range(4), 2).map(lambda x: 1 // 0)
            with pytest.raises(TaskError):
                cluster.collect(ds)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestExecutorBackendEquivalence:
    """A representative slice of the mode-equivalence suite, run on every
    executor backend: the backend is a data-plane choice and must never
    change results, counters aside."""

    def test_narrow_pipeline_all_modes(self, backend):
        for mode in ALL_MODES:
            with make_cluster(mode, workers=2, slots=2, backend=backend) as cluster:
                ds = parallelize(range(30), 4).map(lambda x: x * 3).filter(
                    lambda x: x % 2 == 0
                )
                assert sorted(cluster.collect(ds)) == sorted(
                    x * 3 for x in range(30) if (x * 3) % 2 == 0
                )

    def test_shuffle_chain_all_modes(self, backend):
        for mode in ALL_MODES:
            with make_cluster(mode, workers=2, slots=2, backend=backend) as cluster:
                ds = (
                    parallelize(range(40), 4)
                    .map(lambda x: (x % 8, x))
                    .reduce_by_key(lambda a, b: a + b, 4)
                    .map(lambda kv: (kv[0] % 2, kv[1]))
                    .reduce_by_key(lambda a, b: a + b, 2)
                )
                out = dict(cluster.collect(ds))
                assert out[0] + out[1] == sum(range(40))

    def test_join_all_modes(self, backend):
        for mode in ALL_MODES:
            with make_cluster(mode, workers=2, slots=2, backend=backend) as cluster:
                left = from_partitions([[("a", 1), ("b", 2)], [("c", 3)]])
                right = from_partitions([[("a", 9)], [("b", 8), ("x", 7)]])
                out = sorted(cluster.collect(left.join(right, 2)))
                assert out == [("a", (1, 9)), ("b", (2, 8))]

    def test_user_error_propagates(self, backend):
        from repro.common.errors import TaskError

        with make_cluster(SchedulingMode.DRIZZLE, backend=backend) as cluster:
            ds = parallelize(range(4), 2).map(lambda x: 1 // 0)
            with pytest.raises(TaskError):
                cluster.collect(ds)


@pytest.mark.parametrize("transport", ALL_TRANSPORTS)
class TestTransportBackendEquivalence:
    """A representative slice of the mode-equivalence suite, run on every
    transport backend: moving messages over real sockets is a plumbing
    choice and must never change results or error semantics."""

    def test_narrow_pipeline_all_modes(self, transport):
        for mode in ALL_MODES:
            with make_cluster(mode, workers=2, slots=2, transport=transport) as cluster:
                ds = parallelize(range(30), 4).map(lambda x: x * 3).filter(
                    lambda x: x % 2 == 0
                )
                assert sorted(cluster.collect(ds)) == sorted(
                    x * 3 for x in range(30) if (x * 3) % 2 == 0
                )

    def test_shuffle_chain_all_modes(self, transport):
        for mode in ALL_MODES:
            with make_cluster(mode, workers=2, slots=2, transport=transport) as cluster:
                ds = (
                    parallelize(range(40), 4)
                    .map(lambda x: (x % 8, x))
                    .reduce_by_key(lambda a, b: a + b, 4)
                    .map(lambda kv: (kv[0] % 2, kv[1]))
                    .reduce_by_key(lambda a, b: a + b, 2)
                )
                out = dict(cluster.collect(ds))
                assert out[0] + out[1] == sum(range(40))

    def test_group_run_all_modes(self, transport):
        def build(b):
            ds = parallelize(range(20), 2).map(lambda x, b=b: (x % 2, x + b)).reduce_by_key(
                lambda a, b: a + b, 2
            )
            return compile_plan(ds, dict_action())

        with make_cluster(
            SchedulingMode.DRIZZLE, workers=2, slots=2, group_size=3, transport=transport
        ) as cluster:
            out = cluster.run_group([build(b) for b in range(3)])
        for b, result in enumerate(out):
            expected = {}
            for x in range(20):
                expected[x % 2] = expected.get(x % 2, 0) + x + b
            assert result == expected

    def test_user_error_propagates(self, transport):
        from repro.common.errors import TaskError

        with make_cluster(SchedulingMode.DRIZZLE, transport=transport) as cluster:
            ds = parallelize(range(4), 2).map(lambda x: 1 // 0)
            with pytest.raises(TaskError) as excinfo:
                cluster.collect(ds)
            assert isinstance(excinfo.value.cause, ZeroDivisionError)
