"""Integration tests for the continuous-operator engine: dataflow
correctness, aligned snapshots, and stop-the-world rollback recovery."""

import time

import pytest

from repro.continuous.engine import ContinuousJob, SourceSpec
from repro.continuous.operators import (
    FilterOperator,
    FlatMapOperator,
    KeyedReduceOperator,
    MapOperator,
    OperatorSpec,
    WindowAggOperator,
)
from repro.streaming.sinks import IdempotentSink
from repro.streaming.sources import RecordLog


def keyed_log(n=200, partitions=2, keys=3):
    log = RecordLog(partitions)
    for i in range(n):
        log.append(i % partitions, (f"k{i % keys}", float(i) / 10.0))
    return log


def window_job(log, sink, parallelism=2, window=5.0, watermark_every=10):
    return ContinuousJob(
        source=SourceSpec(log, event_time_fn=lambda r: r[1], watermark_every=watermark_every),
        operators=[
            OperatorSpec(
                "parse", lambda: MapOperator(lambda r: (r[0], (r[1], 1))), parallelism
            ),
            OperatorSpec(
                "window",
                lambda: WindowAggOperator(lambda a, b: a + b, window),
                parallelism,
                partitioning="hash",
            ),
        ],
        sink=sink,
    )


class TestDataflow:
    def test_windowed_counts_complete_and_unique(self):
        log = keyed_log(200)
        sink = IdempotentSink()
        job = window_job(log, sink)
        job.start()
        job.close_input_and_wait(timeout=15)
        out = sink.all_records()
        assert sum(c for (_k, _w, c) in out) == 200
        assert len({(k, w) for (k, w, _c) in out}) == len(out)
        # Spot-check one window: events 0..49 (t in [0,5)) = 50 events.
        window0 = sum(c for (k, w, c) in out if w == 0)
        assert window0 == 50

    def test_filter_and_flat_map_chain(self):
        log = RecordLog(2)
        for i in range(100):
            log.append(i % 2, i)
        sink = IdempotentSink()
        job = ContinuousJob(
            source=SourceSpec(log, event_time_fn=lambda r: float(r)),
            operators=[
                OperatorSpec("even", lambda: FilterOperator(lambda x: x % 2 == 0), 2),
                OperatorSpec("dup", lambda: FlatMapOperator(lambda x: [x, x]), 2),
            ],
            sink=sink,
        )
        job.start()
        job.close_input_and_wait(timeout=15)
        out = sorted(sink.all_records())
        assert out == sorted([x for x in range(0, 100, 2) for _ in range(2)])

    def test_keyed_reduce_final_values(self):
        log = RecordLog(2)
        for i in range(60):
            log.append(i % 2, (f"k{i % 3}", 1))
        sink = IdempotentSink()
        job = ContinuousJob(
            source=SourceSpec(log, event_time_fn=lambda r: 0.0),
            operators=[
                OperatorSpec(
                    "sum",
                    lambda: KeyedReduceOperator(lambda a, b: a + b),
                    2,
                    partitioning="hash",
                ),
            ],
            sink=sink,
        )
        job.start()
        job.close_input_and_wait(timeout=15)
        finals = {}
        for k, v in sink.all_records():
            finals[k] = max(finals.get(k, 0), v)
        assert finals == {"k0": 20, "k1": 20, "k2": 20}

    def test_requires_operators(self):
        with pytest.raises(Exception):
            ContinuousJob(
                source=SourceSpec(RecordLog(1), event_time_fn=lambda r: 0.0),
                operators=[],
                sink=IdempotentSink(),
            )


class TestCheckpoints:
    def test_checkpoint_completes_with_all_acks(self):
        log = keyed_log(300)
        sink = IdempotentSink()
        job = window_job(log, sink)
        job.start()
        time.sleep(0.05)
        job.trigger_checkpoint()
        deadline = time.monotonic() + 5
        while job.completed_checkpoints() < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert job.completed_checkpoints() == 1
        job.close_input_and_wait(timeout=15)

    def test_sink_output_committed_per_checkpoint(self):
        """Two-phase commit: staged output lands under the checkpoint id."""
        log = keyed_log(300)
        sink = IdempotentSink()
        job = window_job(log, sink, watermark_every=5)
        job.start()
        time.sleep(0.1)
        job.trigger_checkpoint()
        job.close_input_and_wait(timeout=15)
        batches = sink.committed_batches()
        assert len(batches) >= 1
        # Conservation regardless of which commit carried which window.
        assert sum(c for (_k, _w, c) in sink.all_records()) == 300


class TestRecovery:
    @pytest.mark.parametrize("victim", [("parse", 0), ("window", 1)])
    def test_kill_instance_exactly_once(self, victim):
        log = keyed_log(400, keys=5)
        sink = IdempotentSink()
        job = window_job(log, sink)
        job.start()
        time.sleep(0.05)
        job.trigger_checkpoint()
        time.sleep(0.05)
        job.kill_operator_instance(*victim)
        job.close_input_and_wait(timeout=20)
        out = sink.all_records()
        assert sum(c for (_k, _w, c) in out) == 400
        assert len({(k, w) for (k, w, _c) in out}) == len(out)
        assert job.recoveries == 1

    def test_recovery_without_any_checkpoint_replays_all(self):
        log = keyed_log(200)
        sink = IdempotentSink()
        job = window_job(log, sink)
        job.start()
        time.sleep(0.05)
        job.kill_operator_instance("window", 0)  # no checkpoint yet
        job.close_input_and_wait(timeout=20)
        assert sum(c for (_k, _w, c) in sink.all_records()) == 200

    def test_multiple_recoveries(self):
        log = keyed_log(300)
        sink = IdempotentSink()
        job = window_job(log, sink)
        job.start()
        time.sleep(0.03)
        job.kill_operator_instance("parse", 0)
        time.sleep(0.03)
        job.kill_operator_instance("parse", 1)
        job.close_input_and_wait(timeout=20)
        assert sum(c for (_k, _w, c) in sink.all_records()) == 300
        assert job.recoveries == 2

    def test_whole_topology_restarts(self):
        """The defining property vs Drizzle (§2.2/Fig. 7): recovery resets
        EVERY operator, not just the failed one — source offsets rewind to
        the last completed checkpoint."""
        log = keyed_log(400)
        sink = IdempotentSink()
        job = window_job(log, sink)
        job.start()
        time.sleep(0.1)
        job.trigger_checkpoint()
        deadline = time.monotonic() + 5
        while job.completed_checkpoints() < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        offsets_at_ckpt = dict(job._completed[-1].source_offsets)
        time.sleep(0.05)
        job.kill_operator_instance("window", 0)
        # After the restart the sources resumed exactly at the snapshot.
        restarted_offsets = {s.partition: s.offset for s in job._sources}
        for p, ckpt_off in offsets_at_ckpt.items():
            assert restarted_offsets[p] >= ckpt_off
        job.close_input_and_wait(timeout=20)
        assert sum(c for (_k, _w, c) in sink.all_records()) == 400
