"""The public API surface: everything a README user would import must be
exported, importable, and documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.common",
    "repro.core",
    "repro.dag",
    "repro.engine",
    "repro.streaming",
    "repro.continuous",
    "repro.sim",
    "repro.workloads",
    "repro.bench",
    "repro.obs",
    "repro.net",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", [p for p in PACKAGES if p != "repro"])
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} lacks __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize(
    "path",
    [
        "repro.engine.LocalCluster",
        "repro.engine.Driver",
        "repro.engine.Worker",
        "repro.engine.ExecutorBackend",
        "repro.engine.InlineExecutor",
        "repro.engine.ThreadExecutor",
        "repro.engine.ProcessExecutor",
        "repro.common.ExecutorConf",
        "repro.common.TransportConf",
        "repro.common.MonitorConf",
        "repro.common.SerializationError",
        "repro.dag.dumps_closure",
        "repro.streaming.StreamingContext",
        "repro.streaming.IdempotentSink",
        "repro.streaming.RecordLog",
        "repro.streaming.UtilizationScalingPolicy",
        "repro.streaming.ReducerCountOptimizer",
        "repro.streaming.SlidingWindowAggregator",
        "repro.continuous.ContinuousJob",
        "repro.continuous.WindowAggOperator",
        "repro.core.GroupSizeTuner",
        "repro.core.PendingTaskTable",
        "repro.core.PlacementPolicy",
        "repro.dag.parallelize",
        "repro.dag.compile_plan",
        "repro.sim.CostModel",
        "repro.sim.EventLoop",
        "repro.sim.simulate_stream",
        "repro.sim.simulate_microbenchmark_events",
        "repro.workloads.YahooWorkload",
        "repro.workloads.VideoWorkload",
        "repro.workloads.QueryCorpusGenerator",
        "repro.obs.TraceRecorder",
        "repro.obs.SpanContext",
        "repro.obs.load_trace",
        "repro.obs.summarize",
    ],
)
def test_key_symbols_have_docstrings(path):
    module_name, symbol = path.rsplit(".", 1)
    obj = getattr(importlib.import_module(module_name), symbol)
    doc = inspect.getdoc(obj)
    assert doc and len(doc) > 10, f"{path} lacks a real docstring"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_obs_only_imports_common():
    """repro.obs sits below the engine: it may depend on repro.common but
    never on the layers it instruments (engine/streaming/continuous/dag)."""
    import ast

    import repro.obs.analyze
    import repro.obs.export
    import repro.obs.names
    import repro.obs.trace

    modules = (
        repro.obs.trace,
        repro.obs.export,
        repro.obs.analyze,
        repro.obs.names,
    )
    for module in modules:
        tree = ast.parse(inspect.getsource(module))
        for node in ast.walk(tree):
            names = []
            if isinstance(node, ast.Import):
                names = [a.name for a in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                names = [node.module]
            for name in names:
                if name.startswith("repro."):
                    assert name.startswith(("repro.common", "repro.obs")), (
                        f"{module.__name__} imports {name}"
                    )


def test_public_classes_in_core_are_pure():
    """repro.core must not IMPORT engine/streaming/sim (it is shared
    policy code); prose references in docstrings are fine."""
    import ast

    import repro.core.groups
    import repro.core.prescheduling
    import repro.core.templates
    import repro.core.tuner

    for module in (
        repro.core.groups,
        repro.core.prescheduling,
        repro.core.templates,
        repro.core.tuner,
    ):
        tree = ast.parse(inspect.getsource(module))
        for node in ast.walk(tree):
            names = []
            if isinstance(node, ast.Import):
                names = [a.name for a in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                names = [node.module]
            for name in names:
                for banned in ("repro.engine", "repro.streaming", "repro.sim"):
                    assert not name.startswith(banned), f"{module.__name__} imports {name}"
