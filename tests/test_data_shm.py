"""Shared-memory shuffle (repro.data.shm): segment encode/decode, the
registry lifecycle (publish/replace/unpublish/drop/clear, epoch gating),
and the end-to-end fast path — co-located reducers take shm hits,
results match the wire path exactly, and no segment outlives its block."""

import pickle

import pytest

from repro.common.config import DataPlaneConf, EngineConf, TransportConf
from repro.common.metrics import (
    COUNT_RPC_MESSAGES,
    COUNT_SHM_FALLBACKS,
    COUNT_SHM_HITS,
    MetricsRegistry,
)
from repro.dag.dataset import parallelize
from repro.data.blocks import RecordBlock
from repro.data.shm import (
    SegmentRegistry,
    decode_bucket,
    encode_map_output,
    live_segments,
    segment_registry,
)
from repro.engine.blocks import BlockStore
from repro.engine.cluster import LocalCluster


class TestSegmentCodec:
    def test_roundtrip_all_buckets(self):
        buckets = {0: [(1, 10), (2, 20)], 2: [(3, 30)]}
        blob = encode_map_output(buckets, epoch=4)
        assert list(decode_bucket(blob, 0)) == buckets[0]
        assert list(decode_bucket(blob, 2)) == buckets[2]

    def test_absent_bucket_is_empty_block(self):
        # Absence of a bucket is data (that reducer got nothing);
        # absence of the whole segment is the caller's fallback signal.
        blob = encode_map_output({0: [(1, 10)]}, epoch=0)
        empty = decode_bucket(blob, 7)
        assert isinstance(empty, RecordBlock)
        assert len(empty) == 0

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            decode_bucket(b"XXXX" + b"\x00" * 16, 0)


class TestSegmentRegistry:
    def _registry(self):
        registry = SegmentRegistry()
        if not registry.available:  # pragma: no cover - minimal platforms
            pytest.skip("multiprocessing.shared_memory unavailable")
        return registry

    def test_publish_read_unpublish(self):
        registry = self._registry()
        assert registry.publish("w0", 1, 2, 3, {0: [(1, 10)]}, epoch=0)
        block = registry.read_bucket("w0", 1, 2, 3, 0)
        assert list(block) == [(1, 10)]
        assert len(registry.live_segments()) == 1
        assert registry.unpublish("w0", 1, 2, 3)
        assert registry.read_bucket("w0", 1, 2, 3, 0) is None
        assert registry.live_segments() == []

    def test_miss_on_unknown_key(self):
        registry = self._registry()
        assert registry.read_bucket("w0", 9, 9, 9, 0) is None

    def test_stale_epoch_is_a_miss(self):
        registry = self._registry()
        registry.publish("w0", 1, 2, 3, {0: [(1, 10)]}, epoch=1)
        assert registry.read_bucket("w0", 1, 2, 3, 0, min_epoch=2) is None
        assert registry.read_bucket("w0", 1, 2, 3, 0, min_epoch=1) is not None
        registry.clear()

    def test_republish_replaces_publication(self):
        registry = self._registry()
        registry.publish("w0", 1, 2, 3, {0: [(1, 10)]}, epoch=0)
        assert len(registry.live_segments()) == 1
        registry.publish("w0", 1, 2, 3, {0: [(1, 99)]}, epoch=1)
        # Still exactly one live publication, and readers only ever see
        # the replacement (the retired bytes are unreachable).
        assert len(registry.live_segments()) == 1
        assert list(registry.read_bucket("w0", 1, 2, 3, 0)) == [(1, 99)]
        registry.clear()

    def test_slab_packs_many_publications(self):
        # Ordinary map outputs share one slab segment: publishing many
        # blocks must not open one kernel object per block.
        registry = self._registry()
        for i in range(32):
            registry.publish("w0", 1, 2, i, {0: [(i, i)]}, epoch=0)
        assert len(registry.live_segments()) == 1
        for i in range(32):
            assert list(registry.read_bucket("w0", 1, 2, i, 0)) == [(i, i)]
        registry.clear()
        assert registry.live_segments() == []

    def test_drop_job_and_drop_owner(self):
        registry = self._registry()
        registry.publish("w0", 1, 2, 0, {0: [(1, 1)]})
        registry.publish("w0", 2, 2, 0, {0: [(1, 1)]})
        registry.publish("w1", 1, 2, 0, {0: [(1, 1)]})
        assert registry.drop_job("w0", 1) == 1
        assert registry.drop_owner("w0") == 1
        assert len(registry.live_segments()) == 1
        assert registry.drop_owner("w1") == 1
        assert registry.live_segments() == []


class TestBlockStoreShmIntegration:
    def test_put_publishes_and_drop_unlinks(self):
        if not segment_registry().available:  # pragma: no cover
            pytest.skip("multiprocessing.shared_memory unavailable")
        store = BlockStore(
            "w-shm-test",
            record_blocks=True,
            shm_shuffle=True,
            metrics=MetricsRegistry(),
        )
        assert store.shm is not None
        store.put_map_output(1, 2, 0, {0: [(1, 10)]}, epoch=0)
        assert list(store.shm.read_bucket("w-shm-test", 1, 2, 0, 0)) == [(1, 10)]
        store.drop_job(1)
        assert store.shm.read_bucket("w-shm-test", 1, 2, 0, 0) is None
        store.release_shm()

    def test_clear_releases_segments(self):
        if not segment_registry().available:  # pragma: no cover
            pytest.skip("multiprocessing.shared_memory unavailable")
        store = BlockStore("w-shm-clear", shm_shuffle=True)
        store.put_map_output(1, 2, 0, {0: [(1, 10)]})
        before = len(live_segments())
        store.clear()
        assert len(live_segments()) == before - 1


class TestEndToEndShmShuffle:
    def _conf(self, shm: bool) -> EngineConf:
        return EngineConf(
            num_workers=3,
            slots_per_worker=2,
            transport=TransportConf(
                backend="tcp",
                data_plane=DataPlaneConf(record_blocks=True, shm_shuffle=shm),
            ),
        )

    def _job(self, cluster):
        data = parallelize([(i % 5, i) for i in range(200)], 6)
        return sorted(cluster.collect(data.reduce_by_key(lambda a, b: a + b)))

    def test_shm_hits_and_identical_results(self):
        with LocalCluster(self._conf(shm=False)) as cluster:
            baseline = self._job(cluster)
        with LocalCluster(self._conf(shm=True)) as cluster:
            shm_result = self._job(cluster)
            hits = cluster.metrics.counter(COUNT_SHM_HITS).value
            fallbacks = cluster.metrics.counter(COUNT_SHM_FALLBACKS).value
        assert pickle.dumps(shm_result) == pickle.dumps(baseline)
        # Everything is co-located in a LocalCluster, so the fast path
        # should serve every remote bucket read.
        assert hits > 0
        assert fallbacks == 0
        # Segment lifecycle: nothing published outlives its cluster.
        assert live_segments() == []

    def test_rpc_parity_when_shm_off(self):
        """count.rpc_messages on the non-shm path is untouched by this
        feature set (±0 parity): record_blocks changes payload layout,
        never message count."""

        def run(record_blocks: bool) -> float:
            conf = EngineConf(
                num_workers=3,
                slots_per_worker=2,
                transport=TransportConf(
                    backend="tcp",
                    data_plane=DataPlaneConf(record_blocks=record_blocks),
                ),
            )
            with LocalCluster(conf) as cluster:
                self._job(cluster)
                return cluster.metrics.counter(COUNT_RPC_MESSAGES).value

        assert run(record_blocks=False) == run(record_blocks=True)

    def test_fallback_to_wire_when_segment_gone(self):
        """Dropping every published segment mid-run must be invisible:
        readers fall back to fetch_buckets transparently."""
        conf = self._conf(shm=True)
        with LocalCluster(conf) as cluster:
            data = parallelize([(i % 5, i) for i in range(100)], 4)
            plan_result_1 = self._job(cluster)
            # Unlink everything published so far; the next job's reads
            # that would have hit shm now miss and go over the wire.
            segment_registry().clear()
            plan_result_2 = self._job(cluster)
            assert plan_result_1 == plan_result_2
