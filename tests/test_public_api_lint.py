"""Lint + behaviour for the redesigned top-level API (``repro``).

The stable surface lives in ``repro/__init__.py``: canonical names plus a
small set of *deprecated* legacy aliases that warn on access.  The lint
half walks the AST of every other source module and asserts none of them
defines, imports, or re-exports those alias names — the aliases exist in
exactly one place, so deleting them next release is a one-file change.
"""

import ast
import pathlib
import warnings

import pytest

import repro

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src"
ALIASES = set(repro.DEPRECATED_ALIASES)


def iter_other_source_files():
    for path in sorted((SRC_ROOT / "repro").rglob("*.py")):
        if path == SRC_ROOT / "repro" / "__init__.py":
            continue
        yield path


def alias_reexports(tree):
    """Yield (lineno, name) wherever a module binds a deprecated alias
    name at module level: assignment, import-as, def/class, or __all__."""
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in ALIASES:
                        yield node.lineno, target.id
                    if target.id == "__all__" and isinstance(
                        node.value, (ast.List, ast.Tuple)
                    ):
                        for elt in node.value.elts:
                            if (
                                isinstance(elt, ast.Constant)
                                and elt.value in ALIASES
                            ):
                                yield elt.lineno, elt.value
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound = alias.asname or alias.name
                if bound in ALIASES:
                    yield node.lineno, bound
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name in ALIASES:
                yield node.lineno, node.name


def test_no_module_outside_init_reexports_deprecated_aliases():
    assert ALIASES  # the shim set must exist for this lint to mean anything
    offenders = []
    for path in iter_other_source_files():
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, name in alias_reexports(tree):
            offenders.append(f"{path.relative_to(SRC_ROOT)}:{lineno}: {name}")
    assert not offenders, (
        "deprecated alias names may only exist in repro/__init__.py:\n  "
        + "\n  ".join(offenders)
    )


def test_top_level_all_resolves():
    for symbol in repro.__all__:
        assert getattr(repro, symbol, None) is not None, symbol


def test_canonical_names_are_the_deep_objects():
    from repro.common.config import EngineConf, TemplateConf
    from repro.engine.cluster import LocalCluster
    from repro.streaming.context import StreamingContext

    assert repro.LocalCluster is LocalCluster
    assert repro.StreamingContext is StreamingContext
    assert repro.EngineConf is EngineConf
    assert repro.TemplateConf is TemplateConf


@pytest.mark.parametrize("alias,target", sorted(repro.DEPRECATED_ALIASES.items()))
def test_deprecated_aliases_warn_and_resolve(alias, target):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        value = getattr(repro, alias)
    assert value is getattr(repro, target)
    assert any(
        issubclass(w.category, DeprecationWarning) and target in str(w.message)
        for w in caught
    ), f"accessing repro.{alias} must raise DeprecationWarning naming {target}"


def test_unknown_attribute_still_raises():
    with pytest.raises(AttributeError):
        repro.DoesNotExist


def test_docstring_documents_the_migration():
    doc = repro.__doc__
    for old_path in (
        "repro.engine.cluster.LocalCluster",
        "repro.common.config.EngineConf",
        "repro.streaming.context.StreamingContext",
        "repro.common.config.TemplateConf",
    ):
        assert old_path in doc, f"migration table must mention {old_path}"
