"""Key-range shard layer: ranges, maps, partitioners, resize planning.

The load-bearing property (hammered by Hypothesis below): for ANY
sequence of scale-out/scale-in events, the union of migrated key-range
shards equals the original keyspace — every map tiles ``[0, HASH_SPACE)``
exactly, so no key is lost and none is duplicated.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.elastic.shards import (
    HASH_SPACE,
    KeyRange,
    ShardMap,
    ShardMove,
    ShardRangePartitioner,
    plan_resize,
    shard_position,
)


class TestKeyRange:
    def test_half_open_contains(self):
        r = KeyRange(10, 20)
        assert r.contains(10) and r.contains(19)
        assert not r.contains(9) and not r.contains(20)
        assert r.width == 10

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ConfigError):
            KeyRange(5, 5)
        with pytest.raises(ConfigError):
            KeyRange(-1, 5)
        with pytest.raises(ConfigError):
            KeyRange(0, HASH_SPACE + 1)

    def test_split(self):
        left, right = KeyRange(0, 100).split(40)
        assert left.as_tuple() == (0, 40) and right.as_tuple() == (40, 100)
        with pytest.raises(ConfigError):
            KeyRange(0, 100).split(0)

    def test_contains_key_matches_shard_position(self):
        r = KeyRange(0, HASH_SPACE)
        for key in ["a", 7, ("x", 3), b"bytes"]:
            assert r.contains_key(key)
            assert 0 <= shard_position(key) < HASH_SPACE


class TestShardMap:
    def test_initial_tiles_and_round_robins(self):
        m = ShardMap.initial(["w1", "w0"], shards_per_worker=4)
        assert m.num_shards() == 8
        assert m.workers() == ["w0", "w1"]
        m.validate()  # exact tiling
        # Round-robin: adjacent shards alternate owners.
        owners = [o for _, o in m.assignments]
        assert owners[0] != owners[1]

    def test_gap_and_overlap_rejected(self):
        with pytest.raises(ConfigError):
            ShardMap([(KeyRange(0, 10), "w0"), (KeyRange(20, HASH_SPACE), "w0")])
        with pytest.raises(ConfigError):
            ShardMap([(KeyRange(0, 20), "w0"), (KeyRange(10, HASH_SPACE), "w0")])

    def test_owner_lookup_consistent_with_partitioner(self):
        m = ShardMap.initial(["w0", "w1", "w2"], shards_per_worker=3)
        p = m.partitioner()
        for key in ["alpha", "beta", 42, ("t", 1)]:
            idx = p.partition(key)
            assert m.assignments[idx][1] == m.owner_of(key)

    def test_partitioner_epoch_distinguishes_layouts(self):
        m = ShardMap.initial(["w0", "w1"], shards_per_worker=2)
        p0 = m.partitioner()
        p_same = m.partitioner()
        assert p0 == p_same and hash(p0) == hash(p_same)
        bumped = ShardMap(m.assignments, epoch=m.epoch + 1)
        assert bumped.partitioner() != p0  # same boundaries, new epoch

    def test_partitioner_is_picklable(self):
        p = ShardMap.initial(["w0", "w1"], 4).partitioner()
        clone = pickle.loads(pickle.dumps(p))
        assert clone == p
        assert clone.partition("some-key") == p.partition("some-key")


class TestPlanResize:
    def test_same_worker_set_is_free(self):
        m = ShardMap.initial(["w0", "w1"], 4)
        target, moves = plan_resize(m, ["w1", "w0"])
        assert target is m and moves == []

    def test_scale_out_splits_not_reshuffles(self):
        m = ShardMap.initial(["w0", "w1"], 4)
        target, moves = plan_resize(m, ["w0", "w1", "w2"])
        assert target.epoch == m.epoch + 1
        # Only the joiner receives shards; survivors never exchange.
        assert all(mv.dst == "w2" for mv in moves)
        moved_width = sum(mv.range.width for mv in moves)
        assert moved_width == target.load()["w2"]
        # Roughly even thirds.
        for w, width in target.load().items():
            assert abs(width - HASH_SPACE // 3) <= HASH_SPACE // 8, (w, width)

    def test_scale_in_moves_only_the_leaver(self):
        m = ShardMap.initial(["w0", "w1", "w2"], 2)
        target, moves = plan_resize(m, ["w0", "w1"])
        leaving_width = m.load()["w2"]
        assert sum(mv.range.width for mv in moves) == leaving_width
        assert all(mv.src == "w2" for mv in moves)
        assert "w2" not in target.load()

    def test_lost_owner_gets_mirror_source(self):
        m = ShardMap.initial(["w0", "w1"], 2)
        target, moves = plan_resize(m, ["w0"], lost=["w1"])
        assert moves and all(mv.src is None for mv in moves)
        assert target.workers() == ["w0"]

    def test_draining_owner_stays_a_source(self):
        m = ShardMap.initial(["w0", "w1"], 2)
        _, moves = plan_resize(m, ["w0"])
        assert moves and all(mv.src == "w1" for mv in moves)


# ----------------------------------------------------------------------
# The Hypothesis property: any resize sequence preserves the keyspace.
# ----------------------------------------------------------------------
_EVENTS = st.lists(
    st.sampled_from(["+1", "+2", "-1", "-2"]), min_size=1, max_size=8
)


@settings(max_examples=60, deadline=None)
@given(events=_EVENTS, start=st.integers(min_value=1, max_value=4))
def test_resize_sequences_preserve_keyspace(events, start):
    """For any sequence of scale-out/scale-in events the union of migrated
    shards equals the original keyspace: every intermediate map tiles
    [0, HASH_SPACE) exactly (validate() enforces no-gap/no-overlap), moves
    are disjoint, and every key's owner is always well-defined."""
    workers = [f"w{i}" for i in range(start)]
    seq = start
    m = ShardMap.initial(workers, shards_per_worker=2)
    probe_keys = [f"key-{i}" for i in range(50)]
    for ev in events:
        delta = int(ev)
        if delta > 0:
            new = workers + [f"w{seq + i}" for i in range(delta)]
            seq += delta
        else:
            if len(workers) + delta < 1:
                continue  # never scale below one machine
            new = workers[: len(workers) + delta]
        target, moves = plan_resize(m, new)
        # validate() ran in the constructor: exact tiling, ergo no key
        # lost and none duplicated.  Check move disjointness on top.
        spans = sorted(mv.range.as_tuple() for mv in moves)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2, f"overlapping moves {(s1, e1)} and {(s2, e2)}"
        # Moves land where the new map says, and only where owners changed.
        for mv in moves:
            idx = target.shard_index(mv.range.start)
            assert target.assignments[idx][1] == mv.dst
        # Every probe key has exactly one owner before and after.
        for key in probe_keys:
            assert m.owner_of(key) in m.workers()
            assert target.owner_of(key) in target.workers()
        # Keys whose owner is unchanged must not appear in any move.
        for key in probe_keys:
            if m.owner_of(key) == target.owner_of(key):
                pos = shard_position(key)
                assert not any(mv.range.contains(pos) for mv in moves)
        workers, m = sorted(target.workers()), target

    assert m.epoch <= len(events)


@settings(max_examples=30, deadline=None)
@given(
    boundaries=st.lists(
        st.integers(min_value=1, max_value=HASH_SPACE - 1),
        min_size=1,
        max_size=12,
        unique=True,
    )
)
def test_arbitrary_tilings_partition_every_key(boundaries):
    bounds = [0] + sorted(boundaries) + [HASH_SPACE]
    assignments = [
        (KeyRange(bounds[i], bounds[i + 1]), f"w{i % 3}")
        for i in range(len(bounds) - 1)
    ]
    m = ShardMap(assignments)
    p = m.partitioner()
    for key in ["a", "b", 17, ("k", 2), b"z"]:
        idx = p.partition(key)
        assert m.assignments[idx][0].contains(shard_position(key))
