"""Tests for the dataset DAG and the physical planner."""

import pytest

from repro.common.errors import PlanError
from repro.dag.dataset import (
    Dataset,
    SourceDataset,
    from_partitions,
    parallelize,
)
from repro.dag.plan import (
    collect_action,
    compile_plan,
    count_action,
    dict_action,
    foreach_action,
    reduce_action,
)


def run_plan_locally(plan):
    """Single-threaded reference executor for a physical plan — used to
    test planner semantics without involving the engine."""
    shuffle_outputs = {}  # (shuffle_id, map_index) -> {reduce: [..]}
    results = []
    for stage in plan.stages:
        stage_results = []
        for partition in range(stage.num_tasks):
            if stage.source_fn is not None:
                records = iter(stage.source_fn(partition))
            else:
                fetched = []
                for spec in stage.input_shuffles:
                    streams = [
                        shuffle_outputs[(spec.shuffle_id, m)].get(partition, [])
                        for m in spec.map_indices_for_reducer(partition)
                    ]
                    fetched.append(streams)
                records = stage.input_merge(partition, fetched)
            records = stage.pipeline(partition, records)
            if stage.output_shuffle is not None:
                buckets = stage.map_output_fn(partition, records)
                shuffle_outputs[(stage.output_shuffle.shuffle_id, partition)] = buckets
            else:
                stage_results.append(stage.action_fn(partition, records))
        if stage.is_result:
            results = stage_results
    return plan.finalize(results)


class TestPlannerStructure:
    def test_narrow_only_single_stage(self):
        ds = parallelize(range(10), 2).map(lambda x: x + 1).filter(lambda x: x > 3)
        plan = compile_plan(ds, collect_action())
        assert len(plan.stages) == 1
        assert plan.stages[0].num_tasks == 2
        assert plan.num_shuffles == 0

    def test_shuffle_splits_stages(self):
        ds = parallelize(range(10), 4).map(lambda x: (x % 2, x)).reduce_by_key(
            lambda a, b: a + b, 3
        )
        plan = compile_plan(ds, collect_action())
        assert len(plan.stages) == 2
        map_stage, reduce_stage = plan.stages
        assert map_stage.output_shuffle is not None
        assert map_stage.output_shuffle.num_maps == 4
        assert reduce_stage.num_tasks == 3
        assert reduce_stage.input_shuffles[0] is map_stage.output_shuffle
        assert reduce_stage.parents == (0,)

    def test_two_shuffles_three_stages(self):
        ds = (
            parallelize(range(20), 4)
            .map(lambda x: (x % 4, x))
            .reduce_by_key(lambda a, b: a + b, 4)
            .map(lambda kv: (kv[0] % 2, kv[1]))
            .reduce_by_key(lambda a, b: a + b, 2)
        )
        plan = compile_plan(ds, collect_action())
        assert len(plan.stages) == 3
        assert plan.num_shuffles == 2
        # Shuffle ids are distinct.
        sids = {s.output_shuffle.shuffle_id for s in plan.stages if s.output_shuffle}
        assert len(sids) == 2

    def test_join_has_two_parents(self):
        left = parallelize([("a", 1)], 2)
        right = parallelize([("a", 2)], 2)
        plan = compile_plan(left.join(right, 2), collect_action())
        assert len(plan.stages) == 3
        assert len(plan.stages[2].input_shuffles) == 2
        assert plan.stages[2].parents == (0, 1)

    def test_tree_shuffle_structure(self):
        ds = parallelize(range(16), 8).tree_reduce_stage(lambda a, b: a + b, fan_in=2)
        plan = compile_plan(ds, collect_action())
        spec = plan.stages[0].output_shuffle
        assert spec.structure == "tree"
        assert spec.fan_in == 2
        assert spec.num_reducers == 4
        # Reducer 1 depends on maps 2,3 only.
        assert spec.reduce_deps(1) == frozenset({(spec.shuffle_id, 2), (spec.shuffle_id, 3)})

    def test_dependencies_all_to_all_by_default(self):
        ds = parallelize(range(10), 4).map(lambda x: (x, x)).group_by_key(2)
        plan = compile_plan(ds, collect_action())
        reduce_stage = plan.stages[1]
        assert len(reduce_stage.task_dependencies(0)) == 4

    def test_unknown_node_rejected(self):
        class Weird(Dataset):
            pass

        with pytest.raises(PlanError):
            compile_plan(Weird(1), collect_action())

    def test_bad_num_partitions(self):
        with pytest.raises(PlanError):
            parallelize([1], 0)


class TestPlanExecutionSemantics:
    def test_collect(self):
        ds = parallelize(range(10), 3).map(lambda x: x * 2)
        plan = compile_plan(ds, collect_action())
        assert sorted(run_plan_locally(plan)) == [x * 2 for x in range(10)]

    def test_count(self):
        ds = parallelize(range(25), 4).filter(lambda x: x % 2 == 0)
        plan = compile_plan(ds, count_action())
        assert run_plan_locally(plan) == 13

    def test_reduce(self):
        ds = parallelize(range(10), 3)
        plan = compile_plan(ds, reduce_action(lambda a, b: a + b))
        assert run_plan_locally(plan) == 45

    def test_reduce_empty_raises(self):
        ds = parallelize([1], 1).filter(lambda x: False)
        plan = compile_plan(ds, reduce_action(lambda a, b: a + b))
        with pytest.raises(PlanError):
            run_plan_locally(plan)

    def test_dict_action(self):
        ds = parallelize(range(10), 2).map(lambda x: (x % 5, 1)).reduce_by_key(
            lambda a, b: a + b, 2
        )
        plan = compile_plan(ds, dict_action())
        assert run_plan_locally(plan) == {k: 2 for k in range(5)}

    def test_foreach_action(self):
        seen = []
        ds = parallelize(range(6), 2)
        plan = compile_plan(ds, foreach_action(seen.append))
        assert run_plan_locally(plan) == 6
        assert sorted(seen) == list(range(6))

    def test_reduce_by_key_with_and_without_combine_agree(self):
        data = [(f"k{i % 7}", i) for i in range(100)]
        ds = lambda: from_partitions([data[:50], data[50:]]).reduce_by_key(
            lambda a, b: a + b, 3
        )
        with_combine = run_plan_locally(
            compile_plan(ds(), dict_action(), map_side_combine=True)
        )
        without = run_plan_locally(
            compile_plan(ds(), dict_action(), map_side_combine=False)
        )
        assert with_combine == without

    def test_combine_shrinks_map_output(self):
        data = [("k", 1)] * 100
        ds = from_partitions([data]).reduce_by_key(lambda a, b: a + b, 2)
        plan_on = compile_plan(ds, dict_action(), map_side_combine=True)
        plan_off = compile_plan(ds, dict_action(), map_side_combine=False)
        stage_on, stage_off = plan_on.stages[0], plan_off.stages[0]
        buckets_on = stage_on.map_output_fn(0, iter(data))
        buckets_off = stage_off.map_output_fn(0, iter(data))
        assert sum(len(b) for b in buckets_on.values()) == 1
        assert sum(len(b) for b in buckets_off.values()) == 100

    def test_group_by_key(self):
        ds = parallelize(range(9), 3).map(lambda x: (x % 3, x)).group_by_key(2)
        plan = compile_plan(ds, dict_action())
        out = {k: sorted(v) for k, v in run_plan_locally(plan).items()}
        assert out == {0: [0, 3, 6], 1: [1, 4, 7], 2: [2, 5, 8]}

    def test_aggregate_by_key_average(self):
        ds = parallelize(range(10), 2).map(lambda x: (x % 2, float(x))).aggregate_by_key(
            zero=lambda: (0.0, 0),
            seq_op=lambda acc, v: (acc[0] + v, acc[1] + 1),
            comb_op=lambda a, b: (a[0] + b[0], a[1] + b[1]),
            num_partitions=2,
        )
        plan = compile_plan(ds, dict_action())
        out = run_plan_locally(plan)
        assert out[0] == (20.0, 5)
        assert out[1] == (25.0, 5)

    def test_join_inner_semantics(self):
        left = from_partitions([[("a", 1), ("b", 2)], [("a", 3)]])
        right = from_partitions([[("a", 10)], [("c", 30)]])
        plan = compile_plan(left.join(right, 2), collect_action())
        out = sorted(run_plan_locally(plan))
        assert out == [("a", (1, 10)), ("a", (3, 10))]

    def test_tree_reduce_correct(self):
        ds = parallelize(range(32), 8).tree_reduce_stage(lambda a, b: a + b, 2)
        plan = compile_plan(ds, collect_action())
        assert sum(run_plan_locally(plan)) == sum(range(32))

    def test_key_by_and_map_values(self):
        ds = parallelize(range(4), 2).key_by(lambda x: x % 2).map_values(lambda v: v * 10)
        plan = compile_plan(ds, collect_action())
        assert sorted(run_plan_locally(plan)) == [(0, 0), (0, 20), (1, 10), (1, 30)]

    def test_partition_by_identity(self):
        from repro.dag.partitioning import HashPartitioner

        ds = parallelize(range(10), 2).map(lambda x: (x, x)).partition_by(
            HashPartitioner(4)
        )
        plan = compile_plan(ds, collect_action())
        assert sorted(run_plan_locally(plan)) == [(x, x) for x in range(10)]

    def test_flat_map(self):
        ds = parallelize([1, 2], 1).flat_map(lambda x: [x] * x)
        plan = compile_plan(ds, collect_action())
        assert sorted(run_plan_locally(plan)) == [1, 2, 2]

    def test_map_partitions_gets_index(self):
        ds = parallelize(range(4), 2).map_partitions(lambda p, it: [(p, sum(it))])
        plan = compile_plan(ds, collect_action())
        out = dict(run_plan_locally(plan))
        assert set(out) == {0, 1}
        assert out[0] + out[1] == 6

    def test_parallelize_even_split(self):
        ds = parallelize(range(10), 3)
        plan = compile_plan(ds, collect_action())
        assert sorted(run_plan_locally(plan)) == list(range(10))

    def test_from_partitions_rejects_empty(self):
        with pytest.raises(PlanError):
            from_partitions([])
