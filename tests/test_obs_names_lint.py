"""Lint: every metric name emitted anywhere in ``src/repro`` is registered.

The observability contract (``repro.obs.names``) only works if the
registry is complete: a counter someone adds to the engine but not to
``METRIC_NAMES`` silently falls out of dashboards, trace tooling, and
the telemetry plane.  This test walks the AST of every source file,
finds ``.counter(...)/.gauge(...)/.histogram(...)/.series(...)/.timed(...)``
call sites, resolves the name argument (string literals, module-level
constants, and f-strings built from them), and checks each against
:func:`repro.obs.names.is_registered_metric`.
"""

import ast
import importlib
import pathlib

import pytest

import repro.common.metrics as metrics_mod
from repro.obs.names import METRIC_NAMES, METRIC_PREFIXES, is_registered_metric

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src"
EMITTER_METHODS = {"counter", "gauge", "histogram", "series", "timed"}


def iter_source_files():
    return sorted((SRC_ROOT / "repro").rglob("*.py"))


def module_name_for(path: pathlib.Path) -> str:
    rel = path.relative_to(SRC_ROOT).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def resolve_name_arg(node: ast.expr, module) -> str:
    """Resolve a metric-name AST node to a concrete (or template) string.

    Module-level constants resolve via the imported module; dynamic
    f-string pieces become an ``x`` placeholder, which still exercises
    the prefix-family check (``prefix + ".x"``).  Raises ValueError for
    shapes we cannot resolve.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        value = getattr(module, node.id, None)
        if isinstance(value, str):
            return value
        raise ValueError(f"constant {node.id} is not a module-level string")
    if isinstance(node, ast.JoinedStr):
        parts = []
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            elif isinstance(piece, ast.FormattedValue) and isinstance(
                piece.value, ast.Name
            ):
                value = getattr(module, piece.value.id, None)
                parts.append(value if isinstance(value, str) else "x")
            else:
                parts.append("x")
        return "".join(parts)
    raise ValueError(f"unresolvable metric name node: {ast.dump(node)}")


def emitted_metric_names():
    """Yield (location, resolved_name) for every literal emit site."""
    for path in iter_source_files():
        tree = ast.parse(path.read_text(), filename=str(path))
        module = importlib.import_module(module_name_for(path))
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in EMITTER_METHODS
                and node.args
            ):
                continue
            arg = node.args[0]
            # Pass-through parameters (e.g. helpers taking `name`) are
            # not emit sites with a concrete name; only lint resolvable
            # literals/constants.
            if isinstance(arg, ast.Name) and not isinstance(
                getattr(module, arg.id, None), str
            ):
                continue
            if isinstance(arg, ast.Attribute):
                continue  # self.name style indirection
            location = f"{path.relative_to(SRC_ROOT)}:{node.lineno}"
            yield location, resolve_name_arg(arg, module)


def test_every_emitted_metric_name_is_registered():
    sites = list(emitted_metric_names())
    assert len(sites) >= 30  # the walker actually found the engine's emits
    unregistered = [
        f"{where}: {name!r}"
        for where, name in sites
        if not is_registered_metric(name)
    ]
    assert not unregistered, (
        "metric names emitted but missing from repro.obs.names:\n  "
        + "\n  ".join(unregistered)
    )


def test_every_metrics_module_constant_is_registered():
    prefixes = ("COUNT_", "GAUGE_", "HIST_", "TIME_")
    constants = {
        name: value
        for name, value in vars(metrics_mod).items()
        if name.startswith(prefixes) and isinstance(value, str)
    }
    assert len(constants) >= 25
    missing = {
        const: value
        for const, value in constants.items()
        if not is_registered_metric(value) and not is_registered_metric(value + ".x")
    }
    assert not missing, f"metrics.py constants unregistered in obs.names: {missing}"


def test_telemetry_and_slo_names_are_registered():
    for name in (
        "telemetry.tasks",
        "telemetry.records",
        "telemetry.backlog",
        "telemetry.queue_delay",
        "telemetry.deltas_ingested",
        "telemetry.stream_backlog",
        "telemetry.batch_wall",
        "telemetry.stage_latency.3",
        "slo.violations",
    ):
        assert is_registered_metric(name), name


def test_prefix_families_do_not_swallow_everything():
    assert not is_registered_metric("not.a.metric")
    assert not is_registered_metric("telemetry")  # bare prefix is not a name


def test_registered_names_are_well_formed():
    for name in METRIC_NAMES:
        assert name == name.strip() and " " not in name, name
    for prefix in METRIC_PREFIXES:
        assert prefix and not prefix.endswith("."), prefix


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
