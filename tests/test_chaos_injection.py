"""Integration tests: hand-built fault plans injected into real clusters.

Each test arms the global injector with an exact schedule (no sampling),
runs a job, and asserts that (a) the fault actually fired and (b) the
result is byte-for-byte what a fault-free run produces — the engine's
recovery machinery, not luck, absorbed the fault.
"""

import contextlib
import socket
import threading
import time

import pytest

from repro.chaos.injector import ChaosInjector, install, uninstall
from repro.chaos.plan import (
    KIND_BLOCK_DELETE,
    KIND_DIAL_REFUSE,
    KIND_EXEC_STRAGGLE,
    KIND_WORKER_KILL,
    SITE_BLOCKS_FETCH,
    SITE_EXEC_COMPUTE,
    SITE_NET_DIAL,
    SITE_WORKER_TASK,
    FaultEvent,
    FaultPlan,
)
from repro.common.config import (
    DataPlaneConf,
    EngineConf,
    MonitorConf,
    SchedulingMode,
    SpeculationConf,
    TransportConf,
)
from repro.common.errors import StageTimeout
from repro.common.metrics import (
    COUNT_NET_CONNECT_RETRIES,
    COUNT_NET_REDIALS,
    COUNT_SPECULATIVE,
    MetricsRegistry,
)
from repro.dag.dataset import SourceDataset, parallelize
from repro.dag.plan import collect_action, compile_plan, dict_action
from repro.engine.cluster import LocalCluster
from repro.net.pool import ConnectionPool


@contextlib.contextmanager
def armed(events, metrics=None, kill_budget=1):
    """Install a hand-built plan for the duration of the block."""
    inj = ChaosInjector(FaultPlan(events), metrics=metrics, kill_budget=kill_budget)
    install(inj)
    try:
        yield inj
    finally:
        uninstall(inj)


def wordcount_plan(n=60, parts=4, reds=3):
    ds = (
        parallelize([f"w{i % 7}" for i in range(n)], parts)
        .map(lambda w: (w, 1))
        .reduce_by_key(lambda a, b: a + b, reds)
    )
    return compile_plan(ds, dict_action())


def expected_wordcount(n=60):
    out = {}
    for i in range(n):
        out[f"w{i % 7}"] = out.get(f"w{i % 7}", 0) + 1
    return out


def make_conf(**kwargs):
    defaults = dict(
        num_workers=3,
        slots_per_worker=2,
        scheduling_mode=SchedulingMode.DRIZZLE,
        group_size=1,
    )
    defaults.update(kwargs)
    return EngineConf(**defaults)


class TestBlockDeleteRecovery:
    def test_deleted_bucket_recovers_to_exact_result(self):
        # A shuffle bucket vanishes -> FetchFailed -> the driver
        # regenerates the lost map output (§3.3) and the job still
        # produces the fault-free answer.
        conf = make_conf(transport=TransportConf(backend="inproc"))
        with LocalCluster(conf) as cluster:
            with armed(
                [FaultEvent(0, SITE_BLOCKS_FETCH, KIND_BLOCK_DELETE, at_hit=1)],
                metrics=cluster.metrics,
            ) as inj:
                out = cluster.run_plan(wordcount_plan())
                assert inj.injected_count == 1
            assert out == expected_wordcount()
            assert cluster.metrics.counter("chaos.block_delete").value == 1

    def test_batched_fetch_failure_with_compression_on(self):
        # The partial-failure path of the *batched* fetch_buckets reply,
        # with compressed frames: one bucket in the batch is gone, the
        # reducer must surface FetchFailed for exactly that map output and
        # recovery must still converge to the exact result.
        conf = make_conf(
            transport=TransportConf(
                backend="tcp",
                connect_timeout_s=0.5,
                call_timeout_s=5.0,
                data_plane=DataPlaneConf(
                    compression="on", compress_threshold_bytes=16
                ),
            ),
        )
        with LocalCluster(conf) as cluster:
            events = [
                FaultEvent(0, SITE_BLOCKS_FETCH, KIND_BLOCK_DELETE, at_hit=1),
                FaultEvent(1, SITE_BLOCKS_FETCH, KIND_BLOCK_DELETE, at_hit=3),
            ]
            with armed(events, metrics=cluster.metrics) as inj:
                out = cluster.run_plan(wordcount_plan(n=120))
                assert inj.injected_count >= 1
            assert out == expected_wordcount(n=120)
            assert cluster.metrics.counter("chaos.block_delete").value >= 1


class TestWorkerKillRecovery:
    def test_kill_at_task_entry_recovers(self):
        conf = make_conf(
            transport=TransportConf(backend="inproc"),
            monitor=MonitorConf(
                enable_heartbeats=True,
                heartbeat_interval_s=0.05,
                heartbeat_timeout_s=0.3,
            ),
        )
        with LocalCluster(conf) as cluster:
            with armed(
                [FaultEvent(0, SITE_WORKER_TASK, KIND_WORKER_KILL, at_hit=2)],
                metrics=cluster.metrics,
            ) as inj:
                out = cluster.run_plan(wordcount_plan())
                assert inj.injected_count == 1
            assert out == expected_wordcount()
            # Exactly one worker died; the cluster kept the rest.
            dead = [w for w in cluster.workers.values() if w.is_dead]
            assert len(dead) == 1


class TestSpeculationOnInjectedStraggler:
    def test_straggler_trips_speculation(self):
        conf = make_conf(
            speculation=SpeculationConf(
                enabled=True,
                check_interval_s=0.02,
                multiplier=3.0,
                min_runtime_s=0.05,
                min_completed_fraction=0.5,
            ),
        )
        with LocalCluster(conf) as cluster:
            # One task stalls 1.5s at compute entry; the rest are instant.
            # The speculation monitor must clone it onto a fast worker and
            # the fast copy's (identical) result must win.
            straggle = FaultEvent(
                0, SITE_EXEC_COMPUTE, KIND_EXEC_STRAGGLE, at_hit=1, param=1.5
            )
            with armed([straggle], metrics=cluster.metrics) as inj:
                ds = SourceDataset(lambda i: [i], 6).map(lambda x: x * 2)
                start = time.monotonic()
                out = cluster.run_plan(compile_plan(ds, collect_action()))
                elapsed = time.monotonic() - start
                assert inj.injected_count == 1
            assert sorted(out) == [0, 2, 4, 6, 8, 10]
            assert elapsed < 1.4  # did not wait out the injected stall
            assert cluster.metrics.counter(COUNT_SPECULATIVE).value >= 1


class TestStageTimeout:
    def test_wait_job_deadline_names_stalled_stage(self):
        with LocalCluster(make_conf()) as cluster:
            plan = compile_plan(
                SourceDataset(lambda i: time.sleep(1.0) or [i], 2),
                collect_action(),
            )
            job_ids = cluster.driver.submit_group([plan])
            with pytest.raises(StageTimeout) as exc:
                cluster.driver.wait_job(job_ids[0], timeout=0.05)
            err = exc.value
            assert err.timeout_s == 0.05
            assert err.pending  # names the unfinished partitions
            assert err.workers  # and where they were placed
            assert "stalled" in str(err)
            # The job itself is healthy; it finishes once given time.
            assert sorted(cluster.driver.wait_job(job_ids[0], timeout=10)) == [0, 1]

    def test_conf_stage_timeout_applies_without_explicit_timeout(self):
        with LocalCluster(make_conf(stage_timeout_s=0.05)) as cluster:
            plan = compile_plan(
                SourceDataset(lambda i: time.sleep(0.8) or [i], 2),
                collect_action(),
            )
            job_ids = cluster.driver.submit_group([plan])
            with pytest.raises(StageTimeout):
                cluster.driver.wait_job(job_ids[0])
            assert sorted(cluster.driver.wait_job(job_ids[0], timeout=10)) == [0, 1]


class _OneShotServer:
    """A bare listener that accepts and immediately closes connections —
    enough for ConnectionPool dial tests without a MessageServer."""

    def __init__(self):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.addr = self._sock.getsockname()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            conn.close()

    def close(self):
        self._stop.set()
        with contextlib.suppress(OSError):
            self._sock.close()
        self._thread.join(timeout=1)


class TestConnectionPoolChaos:
    def test_refused_dial_is_retried_with_backoff(self):
        server = _OneShotServer()
        metrics = MetricsRegistry()
        pool = ConnectionPool(metrics, retry_backoff_s=0.01, max_retries=2)
        try:
            with armed(
                [FaultEvent(0, SITE_NET_DIAL, KIND_DIAL_REFUSE, at_hit=1)],
                metrics=metrics,
            ) as inj:
                with pool.connection(server.addr):
                    pass
                assert inj.injected_count == 1
            assert metrics.counter(COUNT_NET_CONNECT_RETRIES).value >= 1
        finally:
            pool.close()
            server.close()

    def test_redial_counter_distinguishes_reconnects(self):
        server = _OneShotServer()
        metrics = MetricsRegistry()
        pool = ConnectionPool(metrics, retry_backoff_s=0.01)
        try:
            with pool.connection(server.addr):
                pass
            assert metrics.counter(COUNT_NET_REDIALS).value == 0
            # Drop the pooled socket; the next checkout must re-dial and
            # be counted as a redial (first contact was free).
            pool.invalidate(server.addr)
            with pool.connection(server.addr):
                pass
            assert metrics.counter(COUNT_NET_REDIALS).value == 1
        finally:
            pool.close()
            server.close()
