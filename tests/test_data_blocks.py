"""Columnar record blocks (repro.data.blocks): typed-column
classification, wire encode/decode, list-compatible behaviour, the
combiner fast paths, and end-to-end byte-identical results with the
``record_blocks`` toggle on vs off."""

import pickle
import struct

import pytest

from repro.common.config import DataPlaneConf, EngineConf, TransportConf
from repro.dag.dataset import parallelize
from repro.data.blocks import RecordBlock, to_record_block
from repro.dag.combiners import (
    Aggregator,
    group_values_iter,
    merge_combiners_iter,
    reduce_values_iter,
)
from repro.engine.cluster import LocalCluster


class TestClassification:
    def test_int_pairs_take_typed_columns(self):
        block = RecordBlock.from_pairs([(1, 10), (2, 20), (3, 30)])
        assert block.kcode == "q" and block.vcode == "q"
        assert block.is_typed

    def test_float_values_take_typed_columns(self):
        block = RecordBlock.from_pairs([(1, 0.5), (2, 1.5)])
        assert block.kcode == "q" and block.vcode == "d"

    def test_strings_fall_back_to_object_columns(self):
        block = RecordBlock.from_pairs([("a", 1), ("b", 2)])
        assert block.kcode == "O" and block.vcode == "q"
        assert block.is_typed  # one typed column is enough

    def test_mixed_numeric_column_is_object(self):
        block = RecordBlock.from_pairs([(1, 1), (2, 2.0)])
        assert block.vcode == "O"

    def test_bool_is_not_an_int(self):
        # bool would round-trip as int and break byte-identical results.
        block = RecordBlock.from_pairs([(1, True), (2, False)])
        assert block.vcode == "O"
        assert list(block) == [(1, True), (2, False)]

    def test_int64_overflow_falls_back(self):
        block = RecordBlock.from_pairs([(1, 2**63), (2, 5)])
        assert block.vcode == "O"
        assert list(block) == [(1, 2**63), (2, 5)]

    def test_pairless_records_take_single_column(self):
        block = RecordBlock.from_records([3, 1, 2])
        assert block.vcode == "-" and block.kcode == "q"
        assert list(block) == [3, 1, 2]

    def test_two_element_lists_are_not_pairs(self):
        # A list record must come back a list, never silently a tuple.
        block = RecordBlock.from_records([[1, 2], [3, 4]])
        assert block.vcode == "-"
        assert list(block) == [[1, 2], [3, 4]]


class TestListBehaviour:
    PAIRS = [(3, 30), (1, 10), (3, 31)]

    def test_iter_len_eq(self):
        block = RecordBlock.from_pairs(self.PAIRS)
        assert len(block) == 3
        assert list(block) == self.PAIRS
        assert block == self.PAIRS
        assert block == RecordBlock.from_pairs(self.PAIRS)

    def test_getitem_and_slice(self):
        block = RecordBlock.from_pairs(self.PAIRS)
        assert block[0] == (3, 30)
        assert block[-1] == (3, 31)
        assert block[1:] == self.PAIRS[1:]

    def test_pairless_getitem_and_slice(self):
        block = RecordBlock.from_records([5, 6, 7])
        assert block[0] == 5
        assert block[1:] == [6, 7]

    def test_sorted_over_block(self):
        block = RecordBlock.from_pairs(self.PAIRS)
        assert sorted(block) == sorted(self.PAIRS)


class TestWireForm:
    def test_roundtrip_typed(self):
        block = RecordBlock.from_pairs([(i, i * 2) for i in range(100)])
        out = RecordBlock.decode(block.encode())
        assert list(out) == list(block)
        assert out.kcode == "q" and out.vcode == "q"

    def test_roundtrip_object(self):
        pairs = [("k" + str(i), {"n": i}) for i in range(10)]
        out = RecordBlock.decode(RecordBlock.from_pairs(pairs).encode())
        assert list(out) == pairs

    def test_roundtrip_pairless(self):
        out = RecordBlock.decode(RecordBlock.from_records([1.5, 2.5]).encode())
        assert list(out) == [1.5, 2.5]

    def test_golden_bytes_typed_shape(self):
        # The fast shape on the wire: header + raw little-endian-native
        # column buffers, no pickle anywhere.  Header is
        # >4sBBBQII: magic, version, kcode, vcode, count, klen, vlen.
        block = RecordBlock.from_pairs([(1, 10)])
        encoded = block.encode()
        expected_header = struct.pack(
            ">4sBBBQII", b"RBLK", 1, ord("q"), ord("q"), 1, 8, 8
        )
        assert encoded[: len(expected_header)] == expected_header
        import array

        keys = array.array("q", [1])
        values = array.array("q", [10])
        assert encoded[len(expected_header) :] == keys.tobytes() + values.tobytes()

    def test_decode_accepts_memoryview(self):
        block = RecordBlock.from_pairs([(1, 2)])
        out = RecordBlock.decode(memoryview(block.encode()))
        assert list(out) == [(1, 2)]

    def test_decode_rejects_bad_magic(self):
        blob = bytearray(RecordBlock.from_pairs([(1, 2)]).encode())
        blob[0] = 0
        with pytest.raises(ValueError, match="magic"):
            RecordBlock.decode(bytes(blob))

    def test_encoded_size_is_exact(self):
        block = RecordBlock.from_pairs([(i, str(i)) for i in range(7)])
        assert block.encoded_size() == len(block.encode())

    def test_pickle_roundtrips_via_columnar_form(self):
        block = RecordBlock.from_pairs([(i, i + 0.5) for i in range(50)])
        clone = pickle.loads(pickle.dumps(block))
        assert isinstance(clone, RecordBlock)
        assert list(clone) == list(block)
        assert clone.kcode == "q" and clone.vcode == "d"

    def test_to_record_block_idempotent(self):
        block = RecordBlock.from_pairs([(1, 2)])
        assert to_record_block(block) is block


class TestAggregationFastPaths:
    def _agg(self):
        return Aggregator.from_reduce(lambda a, b: a + b)

    def test_merge_combiners_block_matches_list(self):
        streams_as_lists = [[(1, 10), (2, 20)], [(1, 1), (3, 3)]]
        streams_as_blocks = [RecordBlock.from_pairs(s) for s in streams_as_lists]
        expected = sorted(merge_combiners_iter(streams_as_lists, self._agg()))
        assert sorted(merge_combiners_iter(streams_as_blocks, self._agg())) == expected

    def test_reduce_values_block_matches_list(self):
        agg = Aggregator.from_zero(lambda: 100, lambda z, v: z + v, lambda a, b: a + b)
        streams = [[(1, 1), (1, 2)], [(1, 4), (2, 8)]]
        expected = sorted(reduce_values_iter(streams, agg))
        blocks = [RecordBlock.from_pairs(s) for s in streams]
        assert sorted(reduce_values_iter(blocks, agg)) == expected
        # create_combiner must fire exactly once per key.
        assert dict(expected) == {1: 107, 2: 108}

    def test_group_values_block_matches_list(self):
        streams = [[(1, "a"), (2, "b")], [(1, "c")]]
        expected = sorted(group_values_iter(streams))
        blocks = [RecordBlock.from_pairs(s) for s in streams]
        assert sorted(group_values_iter(blocks)) == expected

    def test_reduce_into_empty_block(self):
        out = {}
        RecordBlock.from_pairs([]).reduce_into(out, lambda a, b: a + b)
        assert out == {}


class TestEndToEndEquivalence:
    """Byte-identical job results with record_blocks on vs off (the
    acceptance invariant for the columnar path)."""

    def _run(self, record_blocks: bool, backend: str = "tcp"):
        conf = EngineConf(
            num_workers=3,
            slots_per_worker=2,
            transport=TransportConf(
                backend=backend,
                data_plane=DataPlaneConf(record_blocks=record_blocks),
            ),
        )
        with LocalCluster(conf) as cluster:
            data = parallelize([(i % 7, i) for i in range(200)], 6)
            reduced = sorted(cluster.collect(data.reduce_by_key(lambda a, b: a + b)))
            grouped = sorted(
                (k, sorted(v))
                for k, v in cluster.collect(data.group_by_key())
            )
            words = parallelize(
                ["the quick brown fox the lazy dog the end"] * 5, 3
            )
            counts = sorted(
                cluster.collect(
                    words.flat_map(str.split)
                    .map(lambda w: (w, 1))
                    .reduce_by_key(lambda a, b: a + b)
                )
            )
        return reduced, grouped, counts

    def test_results_identical_across_toggle(self):
        baseline = self._run(record_blocks=False)
        columnar = self._run(record_blocks=True)
        assert pickle.dumps(baseline) == pickle.dumps(columnar)

    def test_results_identical_inproc_backend(self):
        baseline = self._run(record_blocks=False, backend="inproc")
        columnar = self._run(record_blocks=True, backend="inproc")
        assert pickle.dumps(baseline) == pickle.dumps(columnar)
