"""Tests for the streaming simulator (Figures 6-9 machinery)."""

import pytest

from repro.common.errors import SimulationError
from repro.common.stats import percentile
from repro.sim.streaming import (
    SystemConfig,
    flink_normal_latency,
    flink_utilization,
    max_throughput,
    microbatch_service_time,
    simulate_stream,
    tune_batch_interval,
)
from repro.workloads.profiles import VIDEO, YAHOO

RATE = 20e6


class TestSystemConfig:
    def test_unknown_kind(self):
        with pytest.raises(SimulationError):
            SystemConfig(kind="storm")

    def test_needs_two_machines(self):
        with pytest.raises(SimulationError):
            SystemConfig(kind="drizzle", machines=1)

    def test_total_slots(self):
        assert SystemConfig(kind="drizzle", machines=8, slots_per_machine=4).total_slots == 32

    def test_with_override(self):
        c = SystemConfig(kind="drizzle").with_(optimized=True)
        assert c.optimized


class TestServiceTime:
    def test_components_positive_and_sum(self):
        service, parts = microbatch_service_time(YAHOO, SystemConfig(kind="drizzle"), RATE, 0.25)
        assert service == pytest.approx(sum(parts.values()))
        assert all(v >= 0 for v in parts.values())

    def test_spark_pays_more_coordination(self):
        _, spark = microbatch_service_time(YAHOO, SystemConfig(kind="spark"), RATE, 0.5)
        _, drizzle = microbatch_service_time(YAHOO, SystemConfig(kind="drizzle"), RATE, 0.5)
        assert spark["coordination"] > 20 * drizzle["coordination"]
        assert spark["map_compute"] == pytest.approx(drizzle["map_compute"])

    def test_optimization_cuts_map_and_shuffle(self):
        _, plain = microbatch_service_time(YAHOO, SystemConfig(kind="drizzle"), RATE, 0.25)
        _, opt = microbatch_service_time(
            YAHOO, SystemConfig(kind="drizzle", optimized=True), RATE, 0.25
        )
        assert opt["map_compute"] < plain["map_compute"]
        assert opt["fetch_data"] < plain["fetch_data"] / 5
        assert opt["reduce_compute"] < plain["reduce_compute"]

    def test_flink_rejected(self):
        with pytest.raises(SimulationError):
            microbatch_service_time(YAHOO, SystemConfig(kind="flink"), RATE, 0.25)


class TestIntervalTuning:
    def test_spark_needs_larger_interval_than_drizzle(self):
        t_spark = tune_batch_interval(YAHOO, SystemConfig(kind="spark"), RATE)
        t_drizzle = tune_batch_interval(YAHOO, SystemConfig(kind="drizzle"), RATE)
        assert t_spark is not None and t_drizzle is not None
        assert t_spark > 2 * t_drizzle

    def test_overload_returns_none(self):
        assert tune_batch_interval(YAHOO, SystemConfig(kind="drizzle"), 1e9) is None

    def test_stability_guarantee(self):
        interval = tune_batch_interval(YAHOO, SystemConfig(kind="drizzle"), RATE)
        service, _ = microbatch_service_time(
            YAHOO, SystemConfig(kind="drizzle"), RATE, interval
        )
        assert service < interval


class TestSteadyStateRuns:
    def test_fig6a_ordering(self):
        """Fig. 6(a): Drizzle ~= Flink, both several-x faster than Spark."""
        medians = {}
        for kind in ("drizzle", "spark", "flink"):
            r = simulate_stream(YAHOO, SystemConfig(kind=kind), RATE, 300, seed=1)
            assert r.stable
            medians[kind] = percentile(r.latencies(), 50)
        assert medians["spark"] > 2.5 * medians["drizzle"]
        assert medians["spark"] < 6.0 * medians["drizzle"]
        assert 0.5 < medians["drizzle"] / medians["flink"] < 2.0
        # Sub-second for Drizzle, 1-3 s for Spark (paper: 0.35 vs 1.2 s).
        assert medians["drizzle"] < 1.0
        assert 1.0 < medians["spark"] < 3.0

    def test_fig8a_optimized_ordering(self):
        """Fig. 8(a): with §3.5 optimizations Drizzle goes sub-100 ms and
        beats BOTH baselines (Flink cannot combine pre-window)."""
        r_drizzle = simulate_stream(
            YAHOO, SystemConfig(kind="drizzle", optimized=True), 10e6, 300, seed=1
        )
        r_spark = simulate_stream(
            YAHOO, SystemConfig(kind="spark", optimized=True), 10e6, 300, seed=1
        )
        r_flink = simulate_stream(YAHOO, SystemConfig(kind="flink"), 10e6, 300, seed=1)
        m = lambda r: percentile(r.latencies(), 50)
        assert m(r_drizzle) < 0.1
        assert m(r_spark) > 2 * m(r_drizzle)
        assert m(r_flink) > 2 * m(r_drizzle)

    def test_unstable_at_excessive_rate(self):
        r = simulate_stream(YAHOO, SystemConfig(kind="drizzle"), 1e9, 60, seed=0)
        assert not r.stable
        assert r.latencies() == []

    def test_deterministic_given_seed(self):
        a = simulate_stream(YAHOO, SystemConfig(kind="drizzle"), RATE, 120, seed=7)
        b = simulate_stream(YAHOO, SystemConfig(kind="drizzle"), RATE, 120, seed=7)
        assert a.latencies() == b.latencies()

    def test_window_latency_positive_and_counted(self):
        r = simulate_stream(YAHOO, SystemConfig(kind="drizzle"), RATE, 300, seed=1)
        assert len(r.window_latencies) == 30  # 300 s / 10 s windows
        assert all(w.latency_s >= 0 for w in r.window_latencies)

    def test_fig9_video_fatter_tail(self):
        yahoo = simulate_stream(YAHOO, SystemConfig(kind="drizzle"), RATE, 300, seed=3)
        video = simulate_stream(VIDEO, SystemConfig(kind="drizzle"), 7.5e6, 300, seed=3)
        y_ratio = percentile(yahoo.latencies(), 95) / percentile(yahoo.latencies(), 50)
        v_ratio = percentile(video.latencies(), 95) / percentile(video.latencies(), 50)
        assert v_ratio > 1.3 * y_ratio  # session skew inflates the tail
        # Medians comparable (paper: ~350 vs ~400 ms).
        m_y = percentile(yahoo.latencies(), 50)
        m_v = percentile(video.latencies(), 50)
        assert 0.5 < m_v / m_y < 2.0


class TestFlinkModel:
    def test_utilization_monotone_in_rate(self):
        c = SystemConfig(kind="flink")
        assert flink_utilization(YAHOO, c, 2e7) > flink_utilization(YAHOO, c, 1e7)

    def test_latency_grows_with_rate(self):
        c = SystemConfig(kind="flink")
        assert flink_normal_latency(YAHOO, c, 2.5e7) > flink_normal_latency(YAHOO, c, 1e7)

    def test_overload_returns_none(self):
        assert flink_normal_latency(YAHOO, SystemConfig(kind="flink"), 1e9) is None

    def test_smaller_flush_lower_latency_higher_cost(self):
        base = SystemConfig(kind="flink")
        small = base.with_(flink_flush_s=0.03)
        assert flink_normal_latency(YAHOO, small, 1e7) < flink_normal_latency(
            YAHOO, base, 1e7
        )
        assert flink_utilization(YAHOO, small, 1e7) > flink_utilization(YAHOO, base, 1e7)


class TestFailureRuns:
    def test_fig7_shapes(self):
        """The paper's headline recovery claims, as shape assertions:
        Drizzle disrupted ~1 window with a ~1 s spike; Spark ~1 window at
        ~3x its normal latency; Flink spikes >10 s and needs several
        windows to drain the replay backlog."""
        results = {}
        for kind in ("drizzle", "spark", "flink"):
            r = simulate_stream(
                YAHOO, SystemConfig(kind=kind), RATE, 400, seed=2, failure_at_s=240.0
            )
            post = [w for w in r.window_latencies if w.window_end_s >= 240.0]
            disrupted = [w for w in post if w.latency_s > 2 * r.normal_median_latency_s]
            results[kind] = (r, max(w.latency_s for w in post), len(disrupted))
        _r, spike_d, n_d = results["drizzle"]
        _r, spike_s, n_s = results["spark"]
        _r, spike_f, n_f = results["flink"]
        assert 0.6 <= spike_d <= 2.0 and n_d <= 2  # ~1 s, one window
        assert 2.0 <= spike_s <= 6.0 and n_s <= 2  # ~3x normal, one window
        assert spike_f > 10.0 and n_f >= 3  # ~18 s, ~4 windows
        # Headline ratios: recovery ~4x faster than Flink, >=10x lower
        # latency during recovery.
        assert spike_f / spike_d >= 8.0
        assert n_f / max(n_d, 1) >= 2.0

    def test_recovery_returns_to_normal(self):
        r = simulate_stream(
            YAHOO, SystemConfig(kind="flink"), RATE, 400, seed=2, failure_at_s=240.0
        )
        tail = [w.latency_s for w in r.window_latencies if w.window_end_s > 350]
        assert max(tail) < 3 * r.normal_median_latency_s

    def test_failure_before_any_checkpoint(self):
        r = simulate_stream(
            YAHOO, SystemConfig(kind="flink"), RATE, 120, seed=2, failure_at_s=5.0
        )
        assert r.stable  # replays from the beginning but still completes


class TestMaxThroughput:
    def test_fig6b_spark_cannot_meet_250ms(self):
        assert max_throughput(YAHOO, SystemConfig(kind="spark"), 0.25) == 0.0

    def test_fig6b_drizzle_and_flink_similar_at_250ms(self):
        d = max_throughput(YAHOO, SystemConfig(kind="drizzle"), 0.25)
        f = max_throughput(YAHOO, SystemConfig(kind="flink"), 0.25)
        assert d > 1e7 and f > 1e7  # both in the ~20M events/s regime
        assert 0.5 < d / f < 2.0

    def test_fig6b_gap_shrinks_with_target(self):
        ratios = []
        for target in (0.5, 1.0, 2.0):
            d = max_throughput(YAHOO, SystemConfig(kind="drizzle"), target)
            s = max_throughput(YAHOO, SystemConfig(kind="spark"), target)
            ratios.append(d / s)
        assert ratios[0] > ratios[-1]
        assert 1.5 < ratios[0] < 3.5  # paper: 1.5-3x, shrinking
        assert ratios[-1] > 1.0  # Drizzle never loses

    def test_fig8b_only_drizzle_meets_100ms(self):
        d = max_throughput(YAHOO, SystemConfig(kind="drizzle", optimized=True), 0.1)
        s = max_throughput(YAHOO, SystemConfig(kind="spark", optimized=True), 0.1)
        f = max_throughput(YAHOO, SystemConfig(kind="flink"), 0.1)
        assert d > 1e7
        assert s == 0.0
        assert f == 0.0

    def test_fig8b_optimization_improves_drizzle_2_to_3x(self):
        plain = max_throughput(YAHOO, SystemConfig(kind="drizzle"), 0.25)
        opt = max_throughput(YAHOO, SystemConfig(kind="drizzle", optimized=True), 0.25)
        assert 2.0 < opt / plain < 4.5

    def test_monotone_in_target(self):
        c = SystemConfig(kind="drizzle")
        assert max_throughput(YAHOO, c, 1.0) >= max_throughput(YAHOO, c, 0.3)
