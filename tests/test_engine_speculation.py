"""Tests for speculative execution (straggler mitigation).

A slow machine is emulated via per-worker compute delay; the speculation
monitor must launch a second copy on a different worker, the fast copy
wins, and results stay exactly correct (tasks are deterministic, so a
late duplicate completion is harmless).
"""

import time

import pytest

from repro.common.config import EngineConf, SchedulingMode, SpeculationConf
from repro.common.errors import ConfigError
from repro.common.metrics import COUNT_SPECULATIVE
from repro.dag.dataset import SourceDataset
from repro.dag.plan import collect_action, compile_plan, dict_action
from repro.engine.cluster import LocalCluster


def make_spec_cluster(**spec_kwargs):
    defaults = dict(
        enabled=True,
        check_interval_s=0.02,
        multiplier=3.0,
        min_runtime_s=0.05,
        min_completed_fraction=0.5,
    )
    defaults.update(spec_kwargs)
    conf = EngineConf(
        num_workers=3,
        slots_per_worker=2,
        scheduling_mode=SchedulingMode.DRIZZLE,
        group_size=1,
        speculation=SpeculationConf(**defaults),
    )
    return LocalCluster(conf)


class TestSpeculationConf:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"check_interval_s": 0},
            {"multiplier": 1.0},
            {"min_runtime_s": -1},
            {"min_completed_fraction": 0},
            {"min_completed_fraction": 1.5},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SpeculationConf(**kwargs).validate()

    def test_defaults_valid(self):
        SpeculationConf().validate()


class TestSpeculativeExecution:
    def test_straggler_is_speculated_and_result_correct(self):
        with make_spec_cluster() as cluster:
            # worker-0 is a straggler machine: every task on it stalls.
            cluster.workers["worker-0"].compute_delay_per_task_s = 1.5

            ds = SourceDataset(lambda i: [i], 6).map(lambda x: x * 2)
            plan = compile_plan(ds, collect_action())
            start = time.monotonic()
            out = cluster.run_plan(plan)
            elapsed = time.monotonic() - start
            assert sorted(out) == [0, 2, 4, 6, 8, 10]
            # The speculative copies ran on fast machines: well under the
            # 1.5 s the straggler would have cost.
            assert elapsed < 1.4
            assert cluster.metrics.counter(COUNT_SPECULATIVE).value >= 1

    def test_speculation_with_shuffle(self):
        with make_spec_cluster() as cluster:
            cluster.workers["worker-1"].compute_delay_per_task_s = 1.5
            ds = (
                SourceDataset(lambda i: [(i % 2, i)], 6)
                .reduce_by_key(lambda a, b: a + b, 2)
            )
            plan = compile_plan(ds, dict_action())
            out = cluster.run_plan(plan)
            assert out == {0: 0 + 2 + 4, 1: 1 + 3 + 5}

    def test_no_speculation_when_uniform(self):
        with make_spec_cluster(min_runtime_s=0.5) as cluster:
            ds = SourceDataset(lambda i: [i], 6)
            out = cluster.run_plan(compile_plan(ds, collect_action()))
            assert sorted(out) == list(range(6))
            assert cluster.metrics.counter(COUNT_SPECULATIVE).value == 0

    def test_at_most_one_copy_per_task(self):
        with make_spec_cluster() as cluster:
            cluster.workers["worker-0"].compute_delay_per_task_s = 0.8
            ds = SourceDataset(lambda i: [i], 6)
            cluster.run_plan(compile_plan(ds, collect_action()))
            # Several sweeps ran during the straggler's 0.8 s, but each
            # straggling task may only be speculated once.
            spec_count = cluster.metrics.counter(COUNT_SPECULATIVE).value
            assert spec_count <= 2  # at most the straggler's 2 slots

    def test_manual_pass_needs_median(self):
        """No completed tasks -> no median -> no speculation."""
        conf = EngineConf(
            num_workers=2,
            scheduling_mode=SchedulingMode.DRIZZLE,
            speculation=SpeculationConf(enabled=True),
        )
        with LocalCluster(conf) as cluster:
            assert cluster.driver.speculation_pass() == 0
