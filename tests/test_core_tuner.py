"""Tests for the AIMD group-size tuner (§3.4)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.config import TunerConf
from repro.core.tuner import GroupSizeTuner


def make_tuner(initial=10, lower=0.05, upper=0.2, **kwargs) -> GroupSizeTuner:
    conf = TunerConf(
        enabled=True,
        overhead_lower_bound=lower,
        overhead_upper_bound=upper,
        **kwargs,
    )
    return GroupSizeTuner(conf, initial_group_size=initial)


class TestAimdBehavior:
    def test_high_overhead_multiplicative_increase(self):
        tuner = make_tuner(initial=10)
        decision = tuner.observe(coordination_time=0.5, total_time=1.0)
        assert decision.action == "increase"
        assert decision.new_group_size == 20  # x increase_factor (2.0)

    def test_low_overhead_additive_decrease(self):
        tuner = make_tuner(initial=10)
        decision = tuner.observe(coordination_time=0.001, total_time=1.0)
        assert decision.action == "decrease"
        assert decision.new_group_size == 8  # minus decrease_step (2)

    def test_in_band_holds(self):
        tuner = make_tuner(initial=10)
        decision = tuner.observe(coordination_time=0.1, total_time=1.0)
        assert decision.action == "hold"
        assert decision.new_group_size == 10

    def test_bounded_below(self):
        tuner = make_tuner(initial=1)
        for _ in range(5):
            decision = tuner.observe(0.0, 1.0)
        assert decision.new_group_size == 1

    def test_bounded_above(self):
        tuner = make_tuner(initial=900)
        for _ in range(5):
            decision = tuner.observe(0.9, 1.0)
        assert decision.new_group_size == 1000  # max_group_size default

    def test_increase_always_moves_when_unclamped(self):
        tuner = make_tuner(initial=1, increase_factor=1.4)
        decision = tuner.observe(0.9, 1.0)
        # round(1 * 1.4) == 1, but an increase must make progress.
        assert decision.new_group_size == 2

    def test_converges_into_band(self):
        # Coordination cost fixed per group; execution scales with group
        # size, so overhead ~ c / (c + g*e): growing g lowers overhead.
        tuner = make_tuner(initial=1)
        coord = 0.2
        exec_per_batch = 0.1
        for _ in range(40):
            g = tuner.group_size
            tuner.observe(coord, coord + g * exec_per_batch)
        overhead = coord / (coord + tuner.group_size * exec_per_batch)
        assert overhead <= 0.25  # settles at/below the upper bound region
        assert tuner.group_size >= 8

    def test_reacts_to_environment_change(self):
        tuner = make_tuner(initial=1)
        for _ in range(30):
            tuner.observe(0.2, 0.2 + tuner.group_size * 0.1)
        big = tuner.group_size
        # Coordination suddenly becomes cheap (smaller cluster): the tuner
        # should decrease the group size to regain adaptability.
        for _ in range(60):
            tuner.observe(0.0005, 0.0005 + tuner.group_size * 0.1)
        assert tuner.group_size < big

    def test_ewma_damps_single_spike(self):
        tuner = make_tuner(initial=10, ewma_alpha=0.1)
        for _ in range(10):
            tuner.observe(0.1, 1.0)  # in-band steady state
        decision = tuner.observe(0.9, 1.0)  # one GC-like spike
        assert decision.action == "hold"  # smoothed value still in band
        assert tuner.group_size == 10


class TestValidation:
    def test_total_time_positive(self):
        tuner = make_tuner()
        with pytest.raises(ValueError):
            tuner.observe(0.1, 0.0)

    def test_negative_coordination_rejected(self):
        tuner = make_tuner()
        with pytest.raises(ValueError):
            tuner.observe(-0.1, 1.0)

    def test_initial_clamped_to_bounds(self):
        conf = TunerConf(enabled=True, min_group_size=5, max_group_size=50)
        assert GroupSizeTuner(conf, initial_group_size=1).group_size == 5
        assert GroupSizeTuner(conf, initial_group_size=500).group_size == 50

    def test_overhead_capped_at_one(self):
        tuner = make_tuner()
        decision = tuner.observe(5.0, 1.0)
        assert decision.observed_overhead == 1.0


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0, 10), st.floats(0.01, 10)), min_size=1, max_size=80
        )
    )
    def test_group_size_always_in_bounds(self, observations):
        tuner = make_tuner(initial=10)
        for coord, total in observations:
            tuner.observe(coord, total)
            assert 1 <= tuner.group_size <= 1000

    @given(st.floats(0.21, 1.0), st.integers(1, 400))
    def test_above_upper_never_decreases(self, overhead, initial):
        tuner = make_tuner(initial=initial, ewma_alpha=1.0)
        before = tuner.group_size
        decision = tuner.observe(overhead, 1.0)
        assert decision.new_group_size >= before

    @given(st.floats(0.0, 0.049), st.integers(1, 400))
    def test_below_lower_never_increases(self, overhead, initial):
        tuner = make_tuner(initial=initial, ewma_alpha=1.0)
        before = tuner.group_size
        decision = tuner.observe(overhead, 1.0)
        assert decision.new_group_size <= before

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=50))
    def test_history_records_every_observation(self, overheads):
        tuner = make_tuner()
        for o in overheads:
            tuner.observe(o, 1.0)
        assert len(tuner.history) == len(overheads)


class TestSignalsIntegration:
    """The tuner can consume the live telemetry plane's derived signals.

    ``ClusterTelemetry.signals()["coordination"]`` carries the same
    coordination-time / wall-time pair the driver already feeds into
    ``observe``; ``observe_signals`` must reduce to exactly that call, so
    wiring the tuner to the telemetry plane changes no decisions.
    """

    def make_signals(self, scheduling_s, transfer_s, wall_s):
        from repro.common.clock import ManualClock
        from repro.common.config import TelemetryConf
        from repro.common.metrics import (
            TIME_SCHEDULING,
            TIME_TASK_TRANSFER,
            MetricsRegistry,
        )
        from repro.obs.live import ClusterTelemetry

        clock = ManualClock(start=100.0)
        registry = MetricsRegistry(clock)
        store = ClusterTelemetry(
            TelemetryConf(enabled=True),
            clock=clock,
            driver_metrics=registry,
            stale_after_s=60.0,
        )
        store.poll_driver()
        registry.counter(TIME_SCHEDULING).add(scheduling_s)
        registry.counter(TIME_TASK_TRANSFER).add(transfer_s)
        clock.advance(wall_s)
        return store.signals(window_s=10.0)

    def test_high_overhead_signal_matches_direct_observe(self):
        signals = self.make_signals(scheduling_s=0.3, transfer_s=0.2, wall_s=1.0)
        assert signals["coordination"]["overhead"] == pytest.approx(0.5)
        via_signals = make_tuner(initial=10).observe_signals(signals)
        direct = make_tuner(initial=10).observe(0.5, 1.0)
        assert via_signals.action == direct.action == "increase"
        assert via_signals.new_group_size == direct.new_group_size == 20

    def test_low_overhead_signal_decreases(self):
        signals = self.make_signals(scheduling_s=0.0005, transfer_s=0.0005, wall_s=1.0)
        decision = make_tuner(initial=10).observe_signals(signals)
        assert decision.action == "decrease"
        assert decision.new_group_size == 8

    def test_empty_signals_hold_without_error(self):
        decision = make_tuner(initial=10).observe_signals({})
        assert decision.new_group_size == 10
