"""Unit and integration tests for repro.net: framing, connection pool,
message server, and the TcpTransport against the Transport contract —
discovery via the hub, WorkerLost on refused/reset/timeout, exception
propagation, wire metrics, and trace-context activation."""

import pickle
import socket
import threading
import time

import pytest

from repro.common.config import EngineConf, TransportConf
from repro.common.errors import (
    ConfigError,
    FetchFailed,
    TaskError,
    WorkerLost,
)
from repro.common.metrics import (
    COUNT_NET_BYTES_RECEIVED,
    COUNT_NET_BYTES_SENT,
    COUNT_NET_CONNECT_RETRIES,
    COUNT_NET_CONNECTIONS,
    COUNT_RPC_MESSAGES,
    HIST_NET_CALL_LATENCY,
    MetricsRegistry,
)
from repro.net import (
    ConnectFailed,
    ConnectionClosed,
    ConnectionPool,
    FrameError,
    MessageServer,
    TcpTransport,
    encode_frame,
    read_frame,
)
from repro.net.framing import HEADER, KIND_REQUEST, KIND_RESPONSE, MAGIC, VERSION


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
class TestFraming:
    def _socketpair_exchange(self, frame: bytes):
        a, b = socket.socketpair()
        try:
            a.sendall(frame)
            return read_frame(b)
        finally:
            a.close()
            b.close()

    def test_roundtrip(self):
        kind, payload = self._socketpair_exchange(
            encode_frame(KIND_REQUEST, b"hello wire")
        )
        assert (kind, payload) == (KIND_REQUEST, b"hello wire")

    def test_empty_payload_roundtrip(self):
        kind, payload = self._socketpair_exchange(encode_frame(KIND_RESPONSE, b""))
        assert (kind, payload) == (KIND_RESPONSE, b"")

    def test_bad_magic_rejected(self):
        frame = HEADER.pack(b"XX", VERSION, KIND_REQUEST, 0)
        with pytest.raises(FrameError, match="magic"):
            self._socketpair_exchange(frame)

    def test_unknown_version_rejected(self):
        frame = HEADER.pack(MAGIC, 99, KIND_REQUEST, 0)
        with pytest.raises(FrameError, match="version"):
            self._socketpair_exchange(frame)

    def test_unknown_kind_rejected(self):
        frame = HEADER.pack(MAGIC, VERSION, 7, 0)
        with pytest.raises(FrameError, match="kind"):
            self._socketpair_exchange(frame)

    def test_truncated_stream_is_connection_closed(self):
        a, b = socket.socketpair()
        try:
            a.sendall(encode_frame(KIND_REQUEST, b"0123456789")[:12])
            a.close()
            with pytest.raises(ConnectionClosed):
                read_frame(b)
        finally:
            b.close()

    def test_oversized_payload_rejected_at_encode(self):
        from repro.net.framing import MAX_PAYLOAD

        class FakeLen(bytes):
            def __len__(self):
                return MAX_PAYLOAD + 1

        with pytest.raises(FrameError, match="exceeds"):
            encode_frame(KIND_REQUEST, FakeLen())


# ----------------------------------------------------------------------
# Conf
# ----------------------------------------------------------------------
class TestTransportConf:
    def test_defaults_validate(self):
        TransportConf().validate()

    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigError, match="tcp"):
            TransportConf(backend="carrier-pigeon").validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"connect_timeout_s": 0},
            {"call_timeout_s": -1},
            {"max_retries": -1},
            {"retry_backoff_s": -0.1},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            TransportConf(**kwargs).validate()

    def test_engine_conf_roundtrip_carries_transport_knobs(self):
        conf = EngineConf(
            transport=TransportConf(
                backend="tcp",
                connect_timeout_s=0.5,
                call_timeout_s=7.0,
                max_retries=5,
                retry_backoff_s=0.001,
            )
        )
        data = conf.to_dict()
        assert data["transport"]["backend"] == "tcp"
        assert data["transport"]["max_retries"] == 5
        assert EngineConf.from_dict(data) == conf

    def test_env_override_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "tcp")
        assert TransportConf().backend == "tcp"
        monkeypatch.delenv("REPRO_TRANSPORT")
        assert TransportConf().backend == "inproc"


# ----------------------------------------------------------------------
# Pool + server
# ----------------------------------------------------------------------
def _echo_server(metrics):
    return MessageServer(lambda payload: payload, metrics, name="echo")


class TestPoolAndServer:
    def test_connection_reused_across_exchanges(self):
        metrics = MetricsRegistry()
        server = _echo_server(metrics)
        pool = ConnectionPool(metrics)
        try:
            for i in range(5):
                with pool.connection(server.address) as sock:
                    sock.sendall(encode_frame(KIND_REQUEST, b"x%d" % i))
                    kind, payload = read_frame(sock)
                    assert (kind, payload) == (KIND_RESPONSE, b"x%d" % i)
            assert metrics.counter(COUNT_NET_CONNECTIONS).value == 1
        finally:
            pool.close()
            server.close()

    def test_connect_retries_counted_then_connect_failed(self):
        metrics = MetricsRegistry()
        # Grab a port and close it so nothing is listening there.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        addr = probe.getsockname()
        probe.close()
        pool = ConnectionPool(metrics, max_retries=2, retry_backoff_s=0.001)
        with pytest.raises(ConnectFailed, match="3 attempt"):
            with pool.connection(addr):
                pass
        assert metrics.counter(COUNT_NET_CONNECT_RETRIES).value == 2

    def test_errored_connection_not_returned_to_pool(self):
        metrics = MetricsRegistry()
        server = _echo_server(metrics)
        pool = ConnectionPool(metrics)
        try:
            with pytest.raises(RuntimeError):
                with pool.connection(server.address):
                    raise RuntimeError("mid-exchange failure")
            with pool.connection(server.address) as sock:
                sock.sendall(encode_frame(KIND_REQUEST, b"fresh"))
                assert read_frame(sock)[1] == b"fresh"
            # The errored socket was closed, so a second dial happened.
            assert metrics.counter(COUNT_NET_CONNECTIONS).value == 2
        finally:
            pool.close()
            server.close()

    def test_closed_pool_refuses_checkout(self):
        pool = ConnectionPool(MetricsRegistry())
        pool.close()
        with pytest.raises(ConnectFailed, match="closed"):
            with pool.connection(("127.0.0.1", 1)):
                pass

    def test_server_close_is_idempotent_and_marks_closed(self):
        metrics = MetricsRegistry()
        server = _echo_server(metrics)
        assert not server.closed
        server.close()
        server.close()
        assert server.closed


# ----------------------------------------------------------------------
# TcpTransport
# ----------------------------------------------------------------------
class _Endpoint:
    """A handler object with a few representative methods."""

    def __init__(self):
        self.kwargs_seen = None

    def add(self, a, b):
        return a + b

    def with_kwargs(self, a, *, scale=1):
        self.kwargs_seen = scale
        return a * scale

    def boom(self):
        raise ValueError("user-level failure")

    def unpicklable(self):
        return threading.Lock()

    def slow(self, delay):
        time.sleep(delay)
        return "done"


def _fast_conf(**kwargs):
    kwargs.setdefault("backend", "tcp")
    kwargs.setdefault("max_retries", 1)
    kwargs.setdefault("retry_backoff_s", 0.001)
    return TransportConf(**kwargs)


@pytest.fixture
def hub():
    transport = TcpTransport(MetricsRegistry(), conf=_fast_conf(), name="hub")
    yield transport
    transport.close()


@pytest.fixture
def peer(hub):
    transport = TcpTransport(
        MetricsRegistry(), conf=_fast_conf(), hub_addr=hub.address, name="peer"
    )
    yield transport
    transport.close()


class TestTcpTransport:
    def test_hub_local_call(self, hub):
        hub.register("svc", _Endpoint())
        assert hub.call("svc", "add", 2, 3) == 5

    def test_cross_transport_call_via_hub_discovery(self, hub, peer):
        hub.register("driver", _Endpoint())
        peer.register("worker", _Endpoint())
        # peer -> hub-registered endpoint, and hub -> peer-registered one.
        assert peer.call("driver", "add", 1, 1) == 2
        assert hub.call("worker", "add", 20, 3) == 23

    def test_kwargs_cross_the_wire(self, hub, peer):
        endpoint = _Endpoint()
        peer.register("worker", endpoint)
        assert hub.call("worker", "with_kwargs", 6, scale=7) == 42
        assert endpoint.kwargs_seen == 7

    def test_handler_exception_reraised_at_caller(self, hub, peer):
        peer.register("worker", _Endpoint())
        with pytest.raises(ValueError, match="user-level failure"):
            hub.call("worker", "boom")

    def test_unknown_endpoint_is_worker_lost(self, hub):
        with pytest.raises(WorkerLost, match="unknown"):
            hub.call("ghost", "add", 1, 2)

    def test_unpicklable_response_surfaces_not_hangs(self, hub, peer):
        from repro.common.errors import SerializationError

        peer.register("worker", _Endpoint())
        with pytest.raises(SerializationError, match="unpicklable"):
            hub.call("worker", "unpicklable")

    def test_peer_server_death_is_worker_lost_and_cached(self, hub, peer):
        peer.register("worker", _Endpoint())
        assert hub.call("worker", "add", 1, 1) == 2
        peer.close()  # crash model: refused / reset from now on
        # Every call now raises WorkerLost.  The first hits the stale
        # pooled socket (reset); a kernel race can let one or two more
        # dials connect before the listener fully dies, but within a few
        # attempts the refusal is cached and callers fail fast.
        reasons = []
        for _ in range(10):
            with pytest.raises(WorkerLost) as excinfo:
                hub.call("worker", "add", 1, 1)
            reasons.append(str(excinfo.value))
            if "down" in reasons[-1]:
                break
        assert any("down" in r for r in reasons), reasons
        # Once cached dead, no further dial budget is spent.
        before = hub.metrics.counter(COUNT_NET_CONNECT_RETRIES).value
        with pytest.raises(WorkerLost, match="down"):
            hub.call("worker", "add", 1, 1)
        assert hub.metrics.counter(COUNT_NET_CONNECT_RETRIES).value == before

    def test_evicted_endpoint_is_forgotten_by_the_hub(self, hub, peer):
        """Decommission regression (ISSUE 10 satellite): without eviction
        the hub's directory serves a decommissioned worker's stale address
        forever.  Eviction is plumbing — it must not count as an engine
        message."""
        peer.register("worker", _Endpoint())
        assert hub.call("worker", "add", 1, 1) == 2
        before = hub.metrics.counter(COUNT_RPC_MESSAGES).value
        hub.evict("worker")
        assert hub.metrics.counter(COUNT_RPC_MESSAGES).value == before
        with pytest.raises(WorkerLost, match="unknown"):
            hub.call("worker", "add", 1, 1)

    def test_peer_side_evict_propagates_to_hub(self, hub, peer):
        """A non-hub transport's evict() forwards to the hub, so every
        member of the cluster stops resolving the stale entry — not just
        the caller."""
        peer.register("worker", _Endpoint())
        other = TcpTransport(
            MetricsRegistry(), conf=_fast_conf(), hub_addr=hub.address, name="other"
        )
        try:
            assert other.call("worker", "add", 2, 2) == 4
            other.evict("worker")
            # The caller's own cache is cleared and the hub no longer
            # resolves the entry, so a fresh lookup fails too.
            with pytest.raises(WorkerLost):
                other.call("worker", "add", 1, 1)
            with pytest.raises(WorkerLost, match="unknown"):
                hub.call("worker", "add", 1, 1)
        finally:
            other.close()

    def test_reannounce_after_evict_restores_resolution(self, hub, peer):
        """Eviction is not death: a re-registered endpoint (same name, new
        incarnation) supersedes the eviction instead of staying dark."""
        peer.register("worker", _Endpoint())
        hub.evict("worker")
        with pytest.raises(WorkerLost):
            hub.call("worker", "add", 1, 1)
        peer.register("worker", _Endpoint())
        assert hub.call("worker", "add", 3, 4) == 7

    def test_call_timeout_is_worker_lost(self, hub):
        slow_peer = TcpTransport(
            MetricsRegistry(),
            conf=_fast_conf(call_timeout_s=10.0),
            hub_addr=hub.address,
        )
        try:
            slow_peer.register("worker", _Endpoint())
            # A fresh caller with a tiny round-trip budget: the peer
            # accepts but answers too late.
            caller = TcpTransport(
                MetricsRegistry(),
                conf=_fast_conf(call_timeout_s=0.1),
                hub_addr=hub.address,
            )
            try:
                with pytest.raises(WorkerLost, match="connection lost"):
                    caller.call("worker", "slow", 0.5)
            finally:
                caller.close()
        finally:
            slow_peer.close()

    def test_mark_dead_remote_fails_fast(self, hub, peer):
        peer.register("worker", _Endpoint())
        hub.mark_dead("worker")
        with pytest.raises(WorkerLost, match="down"):
            hub.call("worker", "add", 1, 1)
        assert not hub.is_alive("worker")
        # The peer's own server is untouched: only the hub's view died.
        assert not peer.server.closed

    def test_mark_dead_local_closes_server(self, peer):
        peer.register("worker", _Endpoint())
        peer.mark_dead("worker")
        assert peer.server.closed

    def test_is_alive_probes_over_the_wire(self, hub, peer):
        peer.register("worker", _Endpoint())
        assert hub.is_alive("worker")
        peer.mark_dead("worker")
        assert not hub.is_alive("worker")

    def test_try_call_swallows_worker_lost(self, hub):
        assert hub.try_call("ghost", "add", 1, 2) is False
        hub.register("svc", _Endpoint())
        assert hub.try_call("svc", "add", 1, 2) is True

    def test_rpc_count_and_wire_metrics(self, hub, peer):
        peer.register("worker", _Endpoint())
        n = 4
        for i in range(n):
            hub.call("worker", "add", i, i)
        # Engine counter: exactly one per logical call — directory
        # traffic (announce/resolve) is excluded by design.
        assert hub.metrics.counter(COUNT_RPC_MESSAGES).value == n
        # Wire counters: every call moved real bytes both ways.
        assert hub.metrics.counter(COUNT_NET_BYTES_SENT).value > 0
        assert hub.metrics.counter(COUNT_NET_BYTES_RECEIVED).value > 0
        # Per-method latency histogram has one sample per call.
        hist = hub.metrics.histogram(f"{HIST_NET_CALL_LATENCY}.add")
        assert len(hist) == n
        assert hist.summary()["p50"] >= 0

    def test_trace_context_activates_on_handler_side(self, hub, peer):
        from repro.obs.trace import TraceRecorder

        tracer = TraceRecorder()
        hub_traced = TcpTransport(
            MetricsRegistry(), tracer=tracer, conf=_fast_conf(), name="hub2"
        )
        peer_traced = TcpTransport(
            MetricsRegistry(),
            tracer=tracer,
            conf=_fast_conf(),
            hub_addr=hub_traced.address,
            name="peer2",
        )
        try:

            class Traced:
                def work(self):
                    with tracer.start_span("handler.work", actor="worker"):
                        return "ok"

            peer_traced.register("worker", Traced())
            with tracer.start_span("caller.root", actor="driver"):
                assert hub_traced.call("worker", "work") == "ok"
            events = tracer.events()
            by_name = {e["name"]: e for e in events}
            root = by_name["caller.root"]
            child = by_name["handler.work"]
            # The envelope carried the caller's context across the wire:
            # the handler span joined the caller's trace.
            assert child["trace_id"] == root["trace_id"]
            assert child["parent_id"] == root["span_id"]
        finally:
            peer_traced.close()
            hub_traced.close()


class TestErrorWireSafety:
    """Engine exceptions hold formatted-args state; default unpickling
    would re-format and crash.  __reduce__ keeps them wire-safe."""

    def test_worker_lost_roundtrip(self):
        err = pickle.loads(pickle.dumps(WorkerLost("worker-3", "heartbeat timeout")))
        assert isinstance(err, WorkerLost)
        assert err.worker_id == "worker-3"
        assert err.reason == "heartbeat timeout"

    def test_fetch_failed_roundtrip(self):
        err = pickle.loads(pickle.dumps(FetchFailed("shuf-1", 4, "worker-2")))
        assert isinstance(err, FetchFailed)
        assert (err.shuffle_id, err.map_index, err.worker_id) == (
            "shuf-1",
            4,
            "worker-2",
        )

    def test_task_error_roundtrip_preserves_cause(self):
        cause = ZeroDivisionError("division by zero")
        err = pickle.loads(pickle.dumps(TaskError("t-9", cause)))
        assert isinstance(err, TaskError)
        assert err.task_id == "t-9"
        assert isinstance(err.cause, ZeroDivisionError)
