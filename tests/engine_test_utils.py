"""Shared helpers for engine-level tests (importable, unlike conftest)."""

from __future__ import annotations

from repro.common.config import EngineConf, SchedulingMode
from repro.engine.cluster import LocalCluster

ALL_MODES = list(SchedulingMode)


def make_cluster(mode: SchedulingMode, workers: int = 3, slots: int = 2, **kwargs):
    conf = EngineConf(
        num_workers=workers,
        slots_per_worker=slots,
        scheduling_mode=mode,
        **kwargs,
    )
    return LocalCluster(conf)
