"""Shared helpers for engine-level tests (importable, unlike conftest)."""

from __future__ import annotations

from typing import Optional

from repro.common.config import (
    EXECUTOR_BACKENDS,
    TRANSPORT_BACKENDS,
    EngineConf,
    ExecutorConf,
    SchedulingMode,
    TransportConf,
)
from repro.engine.cluster import LocalCluster

ALL_MODES = list(SchedulingMode)
ALL_BACKENDS = list(EXECUTOR_BACKENDS)
ALL_TRANSPORTS = list(TRANSPORT_BACKENDS)


def make_cluster(
    mode: SchedulingMode,
    workers: int = 3,
    slots: int = 2,
    backend: Optional[str] = None,
    transport: Optional[str] = None,
    **kwargs,
):
    """Build a LocalCluster for tests.

    ``transport="inproc"`` pins a test to the in-process transport even
    when CI forces ``REPRO_TRANSPORT=tcp`` — required by tests whose
    closures observe shared memory (captured locks, mutated lists),
    which cannot cross a real wire.
    """
    conf = EngineConf(
        num_workers=workers,
        slots_per_worker=slots,
        scheduling_mode=mode,
        **kwargs,
    )
    if backend is not None:
        conf.executor = ExecutorConf(backend=backend)
    if transport is not None:
        conf.transport = TransportConf(backend=transport)
    return LocalCluster(conf)
