"""Shared helpers for engine-level tests (importable, unlike conftest)."""

from __future__ import annotations

from typing import Optional

from repro.common.config import EXECUTOR_BACKENDS, EngineConf, ExecutorConf, SchedulingMode
from repro.engine.cluster import LocalCluster

ALL_MODES = list(SchedulingMode)
ALL_BACKENDS = list(EXECUTOR_BACKENDS)


def make_cluster(
    mode: SchedulingMode,
    workers: int = 3,
    slots: int = 2,
    backend: Optional[str] = None,
    **kwargs,
):
    conf = EngineConf(
        num_workers=workers,
        slots_per_worker=slots,
        scheduling_mode=mode,
        **kwargs,
    )
    if backend is not None:
        conf.executor = ExecutorConf(backend=backend)
    return LocalCluster(conf)
