"""Shared fixtures for the test suite.

Helper factories live in ``engine_test_utils`` (a plain module) so test
files can import them without relying on conftest-as-a-module, which
breaks when tests/ and benchmarks/ are collected in one pytest run."""

from __future__ import annotations

import pytest

from repro.common.config import EngineConf, SchedulingMode
from repro.engine.cluster import LocalCluster


@pytest.fixture
def drizzle_cluster():
    conf = EngineConf(
        num_workers=3,
        slots_per_worker=2,
        scheduling_mode=SchedulingMode.DRIZZLE,
        group_size=3,
    )
    with LocalCluster(conf) as cluster:
        yield cluster


@pytest.fixture
def spark_cluster():
    conf = EngineConf(
        num_workers=3, slots_per_worker=2, scheduling_mode=SchedulingMode.PER_BATCH
    )
    with LocalCluster(conf) as cluster:
        yield cluster


