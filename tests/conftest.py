"""Shared fixtures for the test suite.

Helper factories live in ``engine_test_utils`` (a plain module) so test
files can import them without relying on conftest-as-a-module, which
breaks when tests/ and benchmarks/ are collected in one pytest run."""

from __future__ import annotations

import multiprocessing
import threading
import time

import pytest

from repro.common.config import EngineConf, SchedulingMode
from repro.data.shm import live_segments
from repro.engine.cluster import LocalCluster
from repro.net.server import live_servers


@pytest.fixture(autouse=True)
def no_leaked_executors():
    """Fail any test that leaves stray non-daemon threads, live child
    processes, open tcp-transport servers, or published shared-memory
    shuffle segments behind (leaked executor backends, forgotten
    shutdowns, unclosed transports, unreleased shm publications)."""
    before = {t for t in threading.enumerate() if not t.daemon}
    servers_before = set(live_servers())
    segments_before = set(live_segments())
    yield
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        threads = [
            t
            for t in threading.enumerate()
            if not t.daemon and t.is_alive() and t not in before
        ]
        children = multiprocessing.active_children()
        servers = [s for s in live_servers() if s not in servers_before]
        segments = [s for s in live_segments() if s not in segments_before]
        if not threads and not children and not servers and not segments:
            return
        time.sleep(0.05)
    leaks = [f"thread {t.name!r}" for t in threads]
    leaks += [f"process pid={p.pid}" for p in children]
    leaks += [f"server {s.address}" for s in servers]
    leaks += [f"shm segment {name}" for name in segments]
    pytest.fail(f"test leaked executor resources: {', '.join(leaks)}")


@pytest.fixture
def drizzle_cluster():
    conf = EngineConf(
        num_workers=3,
        slots_per_worker=2,
        scheduling_mode=SchedulingMode.DRIZZLE,
        group_size=3,
    )
    with LocalCluster(conf) as cluster:
        yield cluster


@pytest.fixture
def spark_cluster():
    conf = EngineConf(
        num_workers=3, slots_per_worker=2, scheduling_mode=SchedulingMode.PER_BATCH
    )
    with LocalCluster(conf) as cluster:
        yield cluster


