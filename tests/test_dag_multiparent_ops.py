"""Tests for the multi-parent operators: union, cogroup, left_join."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import SchedulingMode
from repro.common.errors import PlanError
from repro.dag.dataset import CoGroupDataset, from_partitions, parallelize
from repro.dag.partitioning import HashPartitioner

from engine_test_utils import ALL_MODES, make_cluster

kv_lists = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c", "d"]), st.integers(-20, 20)),
    max_size=25,
)


class TestUnion:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_union_keeps_duplicates(self, mode):
        with make_cluster(mode) as cluster:
            left = parallelize([1, 2, 2], 2)
            right = parallelize([2, 3], 2)
            out = sorted(cluster.collect(left.union(right, 3)))
            assert out == [1, 2, 2, 2, 3]

    def test_union_with_empty_side(self):
        with make_cluster(SchedulingMode.DRIZZLE) as cluster:
            left = parallelize([1, 2], 2)
            right = from_partitions([[], []])
            assert sorted(cluster.collect(left.union(right))) == [1, 2]

    def test_union_then_reduce(self):
        with make_cluster(SchedulingMode.DRIZZLE) as cluster:
            left = parallelize([("k", 1)] * 3, 2)
            right = parallelize([("k", 10)] * 2, 2)
            ds = left.union(right, 2).reduce_by_key(lambda a, b: a + b, 2)
            assert dict(cluster.collect(ds)) == {"k": 23}

    def test_self_union_doubles(self):
        with make_cluster(SchedulingMode.DRIZZLE) as cluster:
            ds = parallelize([5, 6], 2)
            assert sorted(cluster.collect(ds.union(ds))) == [5, 5, 6, 6]

    @settings(deadline=None, max_examples=12)
    @given(st.lists(st.integers(0, 50), max_size=20),
           st.lists(st.integers(0, 50), max_size=20))
    def test_union_is_bag_union(self, left_data, right_data):
        with make_cluster(SchedulingMode.DRIZZLE, workers=2) as cluster:
            left = parallelize(left_data, 2) if left_data else from_partitions([[]])
            right = parallelize(right_data, 2) if right_data else from_partitions([[]])
            out = sorted(cluster.collect(left.union(right, 2)))
            assert out == sorted(left_data + right_data)


class TestCoGroup:
    def test_cogroup_all_keys_present(self):
        with make_cluster(SchedulingMode.DRIZZLE) as cluster:
            left = from_partitions([[("a", 1), ("b", 2)], [("a", 3)]])
            right = from_partitions([[("b", 10)], [("c", 20)]])
            out = {
                k: (sorted(l), sorted(r))
                for k, (l, r) in cluster.collect(left.cogroup(right, 2))
            }
            assert out == {
                "a": ([1, 3], []),
                "b": ([2], [10]),
                "c": ([], [20]),
            }

    def test_left_join(self):
        with make_cluster(SchedulingMode.DRIZZLE) as cluster:
            left = from_partitions([[("a", 1), ("b", 2)]])
            right = from_partitions([[("a", 9)]])
            out = sorted(cluster.collect(left.left_join(right, 2)))
            assert out == [("a", (1, 9)), ("b", (2, None))]

    def test_inner_join_unchanged(self):
        with make_cluster(SchedulingMode.DRIZZLE) as cluster:
            left = from_partitions([[("a", 1), ("b", 2)]])
            right = from_partitions([[("a", 9)]])
            out = sorted(cluster.collect(left.join(right, 2)))
            assert out == [("a", (1, 9))]

    def test_bad_mode_rejected(self):
        with pytest.raises(PlanError):
            CoGroupDataset(
                parallelize([("a", 1)], 1),
                parallelize([("a", 2)], 1),
                HashPartitioner(2),
                mode="full",
            )

    @settings(deadline=None, max_examples=12)
    @given(kv_lists, kv_lists)
    def test_join_decomposition_property(self, left_data, right_data):
        """inner join == cogroup filtered to co-occurring keys, and
        left_join's left side is exactly the left dataset."""
        with make_cluster(SchedulingMode.DRIZZLE, workers=2) as cluster:
            left = parallelize(left_data, 2) if left_data else from_partitions([[]])
            right = parallelize(right_data, 2) if right_data else from_partitions([[]])
            inner = sorted(cluster.collect(left.join(right, 2)))
            cg = dict(cluster.collect(left.cogroup(right, 2)))
            expected_inner = sorted(
                (k, (lv, rv))
                for k, (lvs, rvs) in cg.items()
                for lv in lvs
                for rv in rvs
            )
            assert inner == expected_inner
            # Left join = inner join plus a (k, (v, None)) row for every
            # left pair whose key has no right match.
            left_out = sorted(cluster.collect(left.left_join(right, 2)))
            right_keys = {k for k, _ in right_data}
            expected_left = sorted(
                inner
                + [(k, (v, None)) for k, v in left_data if k not in right_keys]
            )
            assert left_out == expected_left

    @settings(deadline=None, max_examples=12)
    @given(kv_lists, kv_lists)
    def test_left_join_preserves_left_multiplicity_for_unmatched(self, ld, rd):
        with make_cluster(SchedulingMode.DRIZZLE, workers=2) as cluster:
            left = parallelize(ld, 2) if ld else from_partitions([[]])
            right = parallelize(rd, 2) if rd else from_partitions([[]])
            out = cluster.collect(left.left_join(right, 2))
            right_keys = {k for k, _ in rd}
            unmatched_out = sorted((k, v) for k, (v, r) in out if r is None)
            unmatched_in = sorted((k, v) for k, v in ld if k not in right_keys)
            assert unmatched_out == unmatched_in
