"""Smoke-tests: every shipped example must run to completion and print
its self-verification lines (examples double as living documentation, so
they are tested like code)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

CHECKS = {
    "quickstart.py": ["state identical after recovery: True"],
    "batch_analytics.py": ["tree-reduced sum of squares", "partial-merge share"],
    "group_size_tuning.py": ["final group size", "tuner actions"],
    "adaptive_streaming.py": ["final reducer count", "elasticity decisions"],
    "elastic_scaling.py": [
        "counts identical to fixed-size run: True",
        "shards migrated:",
    ],
    "trace_telemetry.py": ["span totals agree with counters: True"],
    "network_cluster.py": [
        "shuffle result over tcp == reference: True",
        "result exact after tcp worker loss: True",
        "recoveries: 1",
    ],
}

SLOW_CHECKS = {
    "yahoo_benchmark.py": [
        "micro-batch groupby  == reference: True",
        "micro-batch reduceby == reference: True",
        "continuous (Flink)   == reference: True",
    ],
    "video_analytics.py": ["total heartbeats accounted: 1200"],
    "fault_recovery.py": [
        "results exact after crash: True",
        "exactly-once output after rollback:   True",
    ],
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    return result.stdout


@pytest.mark.parametrize("name", sorted(CHECKS))
def test_example(name):
    stdout = run_example(name)
    for needle in CHECKS[name]:
        assert needle in stdout, f"{name}: missing {needle!r} in output"


@pytest.mark.parametrize("name", sorted(SLOW_CHECKS))
def test_example_slow(name):
    stdout = run_example(name)
    for needle in SLOW_CHECKS[name]:
        assert needle in stdout, f"{name}: missing {needle!r} in output"


def test_every_example_is_covered():
    shipped = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = set(CHECKS) | set(SLOW_CHECKS)
    assert shipped == covered, f"uncovered examples: {shipped ^ covered}"
