"""Driver-level unit tests: ledger/tuner feeding, job GC, timeouts,
decommissioning, and carry-over behaviour."""

import pytest

from repro.common.config import EngineConf, SchedulingMode, TunerConf
from repro.common.errors import ReproError
from repro.dag.dataset import parallelize
from repro.dag.plan import collect_action, compile_plan, dict_action
from repro.engine.cluster import LocalCluster

from engine_test_utils import make_cluster


def simple_plan(n=10, parts=2):
    return compile_plan(parallelize(range(n), parts), collect_action())


def shuffle_plan(n=20, parts=4, reds=2):
    ds = parallelize(range(n), parts).map(lambda x: (x % 3, x)).reduce_by_key(
        lambda a, b: a + b, reds
    )
    return compile_plan(ds, dict_action())


class TestJobLifecycle:
    def test_wait_job_timeout(self):
        with make_cluster(SchedulingMode.DRIZZLE) as cluster:
            # Submit a job that blocks on a slow source.
            import time

            from repro.dag.dataset import SourceDataset

            plan = compile_plan(
                SourceDataset(lambda i: time.sleep(1.0) or [i], 2), collect_action()
            )
            job_ids = cluster.driver.submit_group([plan])
            with pytest.raises(ReproError, match="did not finish"):
                cluster.driver.wait_job(job_ids[0], timeout=0.05)
            # It does finish eventually.
            assert sorted(cluster.driver.wait_job(job_ids[0], timeout=10)) == [0, 1]

    def test_drop_job_clears_worker_blocks(self):
        with make_cluster(SchedulingMode.DRIZZLE) as cluster:
            plan = shuffle_plan()
            job_ids = cluster.driver.submit_group([plan], job_keys=["k"])
            cluster.driver.wait_job(job_ids[0])
            blocks_before = sum(len(w.blocks) for w in cluster.workers.values())
            assert blocks_before > 0
            cluster.driver.drop_job(job_ids[0])
            blocks_after = sum(len(w.blocks) for w in cluster.workers.values())
            assert blocks_after == 0
            assert job_ids[0] not in cluster.driver.jobs

    def test_job_key_reuses_job_id(self):
        with make_cluster(SchedulingMode.DRIZZLE) as cluster:
            first = cluster.driver.submit_group([simple_plan()], job_keys=["b1"])
            cluster.driver.wait_job(first[0])
            second = cluster.driver.submit_group(
                [simple_plan()], job_keys=["b1"], reuse=True
            )
            assert first == second
            cluster.driver.wait_job(second[0])

    def test_distinct_keys_get_distinct_ids(self):
        with make_cluster(SchedulingMode.DRIZZLE) as cluster:
            a = cluster.driver.submit_group([simple_plan()], job_keys=["a"])
            b = cluster.driver.submit_group([simple_plan()], job_keys=["b"])
            assert a[0] != b[0]
            cluster.driver.wait_job(a[0])
            cluster.driver.wait_job(b[0])


class TestGroupLedgerAndTuner:
    def test_run_group_populates_ledger(self):
        with make_cluster(SchedulingMode.DRIZZLE, group_size=3) as cluster:
            cluster.run_group([simple_plan() for _ in range(3)])
            ledger = cluster.driver.last_group_ledger
            assert ledger is not None
            assert ledger.wall_s > 0
            assert ledger.scheduling_s >= 0
            assert 0.0 <= ledger.overhead_fraction <= 1.0

    def test_tuner_fed_per_group(self):
        conf = EngineConf(
            num_workers=2,
            scheduling_mode=SchedulingMode.DRIZZLE,
            group_size=2,
            tuner=TunerConf(enabled=True),
        )
        with LocalCluster(conf) as cluster:
            cluster.run_group([simple_plan(), simple_plan()])
            cluster.run_group([simple_plan(), simple_plan()])
            assert len(cluster.driver.tuner.history) == 2

    def test_no_tuner_by_default(self):
        with make_cluster(SchedulingMode.DRIZZLE) as cluster:
            assert cluster.driver.tuner is None
            assert cluster.driver.current_group_size == cluster.conf.group_size


class TestMembership:
    def test_placement_excludes_draining(self):
        with make_cluster(SchedulingMode.DRIZZLE, workers=3) as cluster:
            cluster.driver.decommission_worker("worker-2")
            assert "worker-2" in cluster.driver.alive_workers()
            assert "worker-2" not in cluster.driver.placement_workers()

    def test_decommissioned_worker_can_return(self):
        with make_cluster(SchedulingMode.DRIZZLE, workers=2) as cluster:
            cluster.driver.decommission_worker("worker-0")
            cluster.driver.add_worker("worker-0")  # re-registers
            assert "worker-0" in cluster.driver.placement_workers()

    def test_no_workers_raises(self):
        with make_cluster(SchedulingMode.DRIZZLE, workers=1) as cluster:
            cluster.kill_worker("worker-0")
            with pytest.raises(ReproError):
                cluster.driver.submit_group([simple_plan()])

    def test_notify_delivery_failed_for_live_target_is_noop(self):
        with make_cluster(SchedulingMode.DRIZZLE, workers=2) as cluster:
            cluster.driver.notify_delivery_failed(0, 0, 0, "worker-0", "worker-1")
            assert len(cluster.driver.alive_workers()) == 2

    def test_notify_delivery_failed_for_dead_target_triggers_recovery(self):
        with make_cluster(SchedulingMode.DRIZZLE, workers=2) as cluster:
            cluster.workers["worker-1"].kill()  # dead but driver not told
            cluster.driver.notify_delivery_failed(0, 0, 0, "worker-0", "worker-1")
            assert cluster.driver.alive_workers() == ["worker-0"]


class TestCarryOver:
    def test_carry_over_skips_only_live_outputs(self):
        with make_cluster(SchedulingMode.DRIZZLE, workers=3, slots=2) as cluster:
            plan = shuffle_plan()
            job_ids = cluster.driver.submit_group([plan], job_keys=["x"])
            first = cluster.driver.wait_job(job_ids[0])
            # Kill a worker holding some map outputs, then resubmit with
            # reuse: outputs on the dead machine must NOT be carried over.
            cluster.kill_worker("worker-0")
            second_ids = cluster.driver.submit_group(
                [shuffle_plan()], job_keys=["x"], reuse=True
            )
            second = cluster.driver.wait_job(second_ids[0])
            assert second == first
