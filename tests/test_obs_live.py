"""Tests for the cluster-wide live telemetry plane (repro.obs.live).

Covers the delta snapshotter, the driver-side time-series store and its
derived signals, both shipping paths (heartbeat piggyback and the
dedicated ``__metrics__`` plumbing) on both transports, staleness under
worker loss, the SLO watchdog, the HTTP/serve surface, and the
``python -m repro.obs top/serve`` CLI entry points.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.chaos.injector import ChaosInjector, install, uninstall
from repro.chaos.plan import (
    KIND_WORKER_KILL,
    SITE_WORKER_TASK,
    FaultEvent,
    FaultPlan,
)
from repro.common.clock import ManualClock
from repro.common.config import (
    EngineConf,
    MonitorConf,
    SchedulingMode,
    TelemetryConf,
    TransportConf,
)
from repro.common.metrics import (
    COUNT_RPC_MESSAGES,
    COUNT_SLO_VIOLATIONS,
    COUNT_TELEMETRY_RECORDS,
    COUNT_TELEMETRY_TASKS,
    GAUGE_TELEMETRY_BACKLOG,
    HIST_TELEMETRY_QUEUE_DELAY,
    TIME_SCHEDULING,
    TIME_TASK_TRANSFER,
    MetricsRegistry,
)
from repro.dag.dataset import parallelize
from repro.dag.plan import compile_plan, dict_action
from repro.engine.cluster import LocalCluster
from repro.obs.live import DRIVER_TIMELINE, ClusterTelemetry, DeltaSnapshotter
from repro.obs.names import EVENT_SLO_VIOLATION
from repro.obs.serve import TelemetryHTTPServer, snapshot_doc, write_snapshot
from repro.obs.top import render_dashboard
from repro.obs.trace import TraceRecorder


def wordcount_plan(n=60, parts=4, reds=3):
    ds = (
        parallelize([f"w{i % 7}" for i in range(n)], parts)
        .map(lambda w: (w, 1))
        .reduce_by_key(lambda a, b: a + b, reds)
    )
    return compile_plan(ds, dict_action())


def make_conf(hb=True, transport="inproc", **kwargs):
    defaults = dict(
        num_workers=2,
        slots_per_worker=2,
        scheduling_mode=SchedulingMode.DRIZZLE,
        group_size=2,
        transport=TransportConf(backend=transport),
        monitor=MonitorConf(
            enable_heartbeats=hb,
            heartbeat_interval_s=0.02,
            heartbeat_timeout_s=0.5,
        ),
        telemetry=TelemetryConf(enabled=True, interval_s=0.02),
    )
    defaults.update(kwargs)
    return EngineConf(**defaults)


def wait_for(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestDeltaSnapshotter:
    def test_counter_increments_only(self):
        reg = MetricsRegistry()
        snap = DeltaSnapshotter(reg)
        reg.counter("telemetry.tasks").add(3)
        assert snap.delta()["counters"] == {"telemetry.tasks": 3.0}
        reg.counter("telemetry.tasks").add(2)
        assert snap.delta()["counters"] == {"telemetry.tasks": 2.0}

    def test_no_change_returns_none(self):
        reg = MetricsRegistry()
        snap = DeltaSnapshotter(reg)
        assert snap.delta() is None
        reg.counter("telemetry.tasks").add(1)
        assert snap.delta() is not None
        assert snap.delta() is None

    def test_gauges_ship_only_when_changed(self):
        reg = MetricsRegistry()
        snap = DeltaSnapshotter(reg)
        reg.gauge(GAUGE_TELEMETRY_BACKLOG).set(4)
        assert snap.delta()["gauges"] == {GAUGE_TELEMETRY_BACKLOG: 4.0}
        reg.gauge(GAUGE_TELEMETRY_BACKLOG).set(4)  # unchanged value
        assert snap.delta() is None
        reg.gauge(GAUGE_TELEMETRY_BACKLOG).set(0)
        assert snap.delta()["gauges"] == {GAUGE_TELEMETRY_BACKLOG: 0.0}

    def test_histogram_cursor_ships_new_samples_once(self):
        reg = MetricsRegistry()
        snap = DeltaSnapshotter(reg)
        hist = reg.histogram(HIST_TELEMETRY_QUEUE_DELAY)
        hist.record(0.1)
        hist.record(0.2)
        assert snap.delta()["samples"] == {HIST_TELEMETRY_QUEUE_DELAY: [0.1, 0.2]}
        hist.record(0.3)
        assert snap.delta()["samples"] == {HIST_TELEMETRY_QUEUE_DELAY: [0.3]}

    def test_sample_cap_spills_to_next_delta(self):
        reg = MetricsRegistry()
        snap = DeltaSnapshotter(reg, max_samples=2)
        hist = reg.histogram(HIST_TELEMETRY_QUEUE_DELAY)
        for i in range(5):
            hist.record(float(i))
        assert snap.delta()["samples"][HIST_TELEMETRY_QUEUE_DELAY] == [0.0, 1.0]
        assert snap.delta()["samples"][HIST_TELEMETRY_QUEUE_DELAY] == [2.0, 3.0]
        assert snap.delta()["samples"][HIST_TELEMETRY_QUEUE_DELAY] == [4.0]

    def test_registry_reset_is_a_fresh_start_not_an_error(self):
        reg = MetricsRegistry()
        snap = DeltaSnapshotter(reg)
        reg.counter("telemetry.tasks").add(5)
        reg.histogram(HIST_TELEMETRY_QUEUE_DELAY).record(1.0)
        reg.histogram(HIST_TELEMETRY_QUEUE_DELAY).record(1.5)
        snap.delta()
        reg.reset()
        reg.counter("telemetry.tasks").add(2)
        reg.histogram(HIST_TELEMETRY_QUEUE_DELAY).record(2.0)
        delta = snap.delta()
        assert delta["counters"] == {"telemetry.tasks": 2.0}
        # Cursor (2) is past the post-reset end (1) -> treated as a fresh
        # start and the new sample ships from position 0.
        assert delta["samples"] == {HIST_TELEMETRY_QUEUE_DELAY: [2.0]}

    def test_sequence_numbers_increase(self):
        reg = MetricsRegistry()
        snap = DeltaSnapshotter(reg)
        reg.counter("telemetry.tasks").add(1)
        first = snap.delta()
        reg.counter("telemetry.tasks").add(1)
        second = snap.delta()
        assert second["seq"] == first["seq"] + 1


class TestClusterTelemetryStore:
    def make_store(self, **kwargs):
        clock = ManualClock(start=100.0)
        store = ClusterTelemetry(
            TelemetryConf(enabled=True, interval_s=0.05),
            clock=clock,
            driver_metrics=MetricsRegistry(clock),
            stale_after_s=kwargs.pop("stale_after_s", 1.0),
            **kwargs,
        )
        return store, clock

    def test_ingest_merges_counters_and_samples(self):
        store, _clock = self.make_store()
        store.ingest(
            "w0",
            {
                "seq": 1,
                "counters": {COUNT_TELEMETRY_TASKS: 2.0},
                "gauges": {GAUGE_TELEMETRY_BACKLOG: 1.0},
                "samples": {HIST_TELEMETRY_QUEUE_DELAY: [0.01, 0.02]},
            },
        )
        store.ingest("w0", {"seq": 2, "counters": {COUNT_TELEMETRY_TASKS: 3.0}})
        rollup = store.rollup()
        w0 = rollup["workers"]["w0"]
        assert w0["counters"][COUNT_TELEMETRY_TASKS] == 5.0
        assert w0["gauges"][GAUGE_TELEMETRY_BACKLOG] == 1.0
        assert w0["histograms"][HIST_TELEMETRY_QUEUE_DELAY]["count"] == 2
        assert rollup["cluster"]["counters"][COUNT_TELEMETRY_TASKS] == 5.0

    def test_empty_delta_refreshes_liveness(self):
        store, clock = self.make_store()
        store.ingest("w0", {"seq": 1, "counters": {COUNT_TELEMETRY_TASKS: 1.0}})
        clock.advance(0.9)
        store.ingest("w0", None)  # heartbeat with nothing new
        clock.advance(0.9)
        assert store.stale_workers() == []  # refreshed at t+0.9
        clock.advance(0.2)
        assert store.stale_workers() == ["w0"]

    def test_stale_worker_excluded_from_rollup_and_signals(self):
        store, clock = self.make_store()
        store.ingest("w0", {"seq": 1, "counters": {COUNT_TELEMETRY_TASKS: 4.0}})
        store.ingest("w1", {"seq": 1, "counters": {COUNT_TELEMETRY_TASKS: 6.0}})
        clock.advance(0.5)
        store.ingest("w1", None)
        clock.advance(0.7)  # w0 last seen 1.2s ago, w1 0.7s ago
        rollup = store.rollup()
        assert rollup["stale_workers"] == ["w0"]
        assert rollup["cluster"]["counters"][COUNT_TELEMETRY_TASKS] == 6.0
        assert rollup["workers"]["w0"]["stale"] is True
        sig = store.signals()
        assert sig["live_workers"] == ["w1"]
        assert sig["stale_workers"] == ["w0"]

    def test_windowed_rates(self):
        store, clock = self.make_store()
        store.ingest("w0", {"seq": 1, "counters": {COUNT_TELEMETRY_TASKS: 10.0}})
        clock.advance(2.0)
        store.ingest("w0", {"seq": 2, "counters": {COUNT_TELEMETRY_TASKS: 10.0}})
        sig = store.signals(window_s=10.0)
        # 20 tasks over the timeline's 2s life inside a 10s window.
        assert sig["tasks_per_s"] == pytest.approx(10.0)

    def test_fault_annotation_lands_on_timeline(self):
        store, _clock = self.make_store()
        store.ingest("w0", {"seq": 1, "counters": {}})
        store.annotate_fault("w0", "worker_kill", "worker.task")
        faults = store.rollup()["workers"]["w0"]["faults"]
        assert faults == [
            {"t": pytest.approx(100.0), "kind": "worker_kill", "site": "worker.task"}
        ]

    def test_fault_on_unknown_worker_starts_stale_timeline(self):
        store, _clock = self.make_store()
        store.annotate_fault("ghost", "worker_kill", "worker.task")
        rollup = store.rollup(include_stale=True)
        assert rollup["workers"]["ghost"]["stale"] is True

    def test_signals_coordination_from_driver_registry(self):
        store, clock = self.make_store()
        reg = store._driver_metrics
        store.poll_driver()
        reg.counter(TIME_SCHEDULING).add(0.3)
        reg.counter(TIME_TASK_TRANSFER).add(0.2)
        clock.advance(1.0)
        sig = store.signals(window_s=10.0)
        coord = sig["coordination"]
        assert coord["coordination_s"] == pytest.approx(0.5)
        assert coord["wall_s"] == pytest.approx(1.0)
        assert coord["overhead"] == pytest.approx(0.5)

    def test_slo_watchdog_fires_counter_and_trace_instant(self):
        clock = ManualClock(start=10.0)
        reg = MetricsRegistry(clock)
        tracer = TraceRecorder(clock=clock)
        store = ClusterTelemetry(
            TelemetryConf(
                enabled=True, interval_s=0.05, slo_queue_delay_p99_ms=5.0
            ),
            clock=clock,
            driver_metrics=reg,
            tracer=tracer,
            stale_after_s=5.0,
        )
        store.ingest(
            "w0",
            {"seq": 1, "samples": {HIST_TELEMETRY_QUEUE_DELAY: [0.5]}},  # 500ms
        )
        assert len(store.violations) == 1
        violation = store.violations[0]
        assert violation["signal"] == "queueing_delay_p99_ms"
        assert violation["value"] == pytest.approx(500.0)
        assert reg.counter(COUNT_SLO_VIOLATIONS).value == 1
        assert any(e["name"] == EVENT_SLO_VIOLATION for e in tracer.events())
        sig = store.signals()
        assert sig["slo"]["violations"] == 1

    def test_slo_check_is_rate_limited(self):
        clock = ManualClock(start=10.0)
        store = ClusterTelemetry(
            TelemetryConf(enabled=True, interval_s=1.0, slo_queue_delay_p99_ms=5.0),
            clock=clock,
            driver_metrics=MetricsRegistry(clock),
            stale_after_s=60.0,
        )
        for seq in range(5):  # all at the same instant: one check only
            store.ingest(
                "w0",
                {"seq": seq, "samples": {HIST_TELEMETRY_QUEUE_DELAY: [0.5]}},
            )
        assert len(store.violations) == 1


@pytest.mark.parametrize("transport", ["inproc", "tcp"])
@pytest.mark.parametrize("hb", [True, False], ids=["heartbeats", "metrics-rpc"])
class TestShippingEndToEnd:
    def test_worker_metrics_reach_the_driver(self, transport, hb):
        with LocalCluster(make_conf(hb=hb, transport=transport)) as cluster:
            cluster.run_plan(wordcount_plan())
            assert wait_for(
                lambda: cluster.telemetry.rollup()["cluster"]["counters"].get(
                    COUNT_TELEMETRY_TASKS, 0
                )
                >= 7  # 4 map + 3 reduce tasks
            )
            rollup = cluster.telemetry.rollup()
            workers = [w for w in rollup["workers"] if w != DRIVER_TIMELINE]
            assert sorted(workers) == ["worker-0", "worker-1"]
            assert rollup["cluster"]["counters"][COUNT_TELEMETRY_RECORDS] > 0
            # Every worker that ran tasks shipped queue-delay samples.
            merged = rollup["cluster"]["histograms"]
            assert merged[HIST_TELEMETRY_QUEUE_DELAY]["count"] >= 7
            sig = cluster.telemetry.signals()
            assert sig["queueing_delay_ms"]["count"] >= 7
            assert sig["stage_latency_ms"]  # per-stage percentiles present

    def test_dashboard_renders_counters(self, transport, hb):
        with LocalCluster(make_conf(hb=hb, transport=transport)) as cluster:
            cluster.run_plan(wordcount_plan())
            assert wait_for(
                lambda: cluster.telemetry.rollup()["cluster"]["counters"].get(
                    COUNT_TELEMETRY_TASKS, 0
                )
                >= 7
            )
            frame = render_dashboard(cluster.telemetry)
            assert "worker-0" in frame and "worker-1" in frame
            assert "queueing delay ms" in frame
            assert "p99" in frame


class TestShippingIsUncountedPlumbing:
    def test_metrics_rpc_does_not_touch_rpc_message_count(self):
        # The dedicated __metrics__ path (heartbeats off) must be
        # invisible to the engine's message accounting, on both backends.
        for transport in ("inproc", "tcp"):
            with LocalCluster(make_conf(hb=False, transport=transport)) as cluster:
                cluster.run_plan(wordcount_plan())
                worker = cluster.workers["worker-0"]
                before = cluster.metrics.counter(COUNT_RPC_MESSAGES).value
                assert worker.ship_telemetry() is True
                after = cluster.metrics.counter(COUNT_RPC_MESSAGES).value
                assert after == before, transport

    def test_disabled_conf_means_no_worker_registry(self):
        conf = make_conf()
        conf.telemetry.enabled = False
        with LocalCluster(conf) as cluster:
            assert cluster.telemetry is None
            worker = cluster.workers["worker-0"]
            assert worker.telemetry_metrics is None
            assert worker.ship_telemetry() is False
            cluster.run_plan(wordcount_plan())  # still computes fine


class TestTelemetryUnderWorkerLoss:
    def test_killed_worker_goes_stale_and_rollups_exclude_it(self):
        # Satellite: a worker killed mid-run (chaos worker_kill) stops
        # updating its timeline, is marked stale after the heartbeat
        # timeout, and rollups/signals exclude it without raising.
        conf = make_conf(hb=True, num_workers=3, group_size=1)
        with LocalCluster(conf) as cluster:
            inj = ChaosInjector(
                FaultPlan(
                    [FaultEvent(0, SITE_WORKER_TASK, KIND_WORKER_KILL, at_hit=2)]
                ),
                metrics=cluster.metrics,
                telemetry=cluster.telemetry,
                kill_budget=1,
            )
            install(inj)
            try:
                out = cluster.run_plan(wordcount_plan())
                assert inj.injected_count == 1
            finally:
                uninstall(inj)
            assert out  # recovery produced a result
            dead = [w for w, obj in cluster.workers.items() if obj.is_dead]
            assert len(dead) == 1
            victim = dead[0]
            # The injector pinned the fault onto the victim's timeline.
            assert wait_for(
                lambda: any(
                    f["kind"] == KIND_WORKER_KILL
                    for f in cluster.telemetry.rollup(include_stale=True)[
                        "workers"
                    ]
                    .get(victim, {"faults": []})["faults"]
                )
            )
            # Past the heartbeat timeout the victim reads stale...
            assert wait_for(lambda: victim in cluster.telemetry.stale_workers())
            rollup = cluster.telemetry.rollup()
            assert victim in rollup["stale_workers"]
            # ...and the cluster merge only sums the survivors.
            survivors_tasks = sum(
                state["counters"].get(COUNT_TELEMETRY_TASKS, 0)
                for worker_id, state in rollup["workers"].items()
                if worker_id != DRIVER_TIMELINE and not state["stale"]
            )
            assert rollup["cluster"]["counters"].get(
                COUNT_TELEMETRY_TASKS, 0
            ) == pytest.approx(survivors_tasks)
            # signals() must not raise with a stale member present.
            sig = cluster.telemetry.signals()
            assert victim in sig["stale_workers"]


class TestServeSurface:
    def test_http_endpoints(self):
        with LocalCluster(make_conf()) as cluster:
            cluster.run_plan(wordcount_plan())
            wait_for(
                lambda: cluster.telemetry.rollup()["cluster"]["counters"].get(
                    COUNT_TELEMETRY_TASKS, 0
                )
                >= 7
            )
            with TelemetryHTTPServer(cluster.telemetry, port=0) as server:
                def get(path):
                    with urllib.request.urlopen(server.url + path, timeout=10) as r:
                        assert r.headers["Content-Type"] == "application/json"
                        return json.loads(r.read().decode("utf-8"))

                doc = get("/")
                assert doc["version"] == 1
                assert "rollup" in doc and "signals" in doc
                rollup = get("/rollup")
                assert COUNT_TELEMETRY_TASKS in rollup["cluster"]["counters"]
                signals = get("/signals")
                assert signals["queueing_delay_ms"]["count"] >= 7
                health = get("/healthz")
                assert health["ok"] is True and health["live_workers"] == 2
                with pytest.raises(urllib.error.HTTPError):
                    get("/nope")

    def test_snapshot_doc_and_file(self, tmp_path):
        with LocalCluster(make_conf()) as cluster:
            cluster.run_plan(wordcount_plan())
            doc = snapshot_doc(cluster.telemetry)
            assert set(doc) == {"version", "rollup", "signals"}
            path = tmp_path / "snap.json"
            write_snapshot(cluster.telemetry, str(path))
            on_disk = json.loads(path.read_text())
            assert on_disk["version"] == 1
            json.dumps(on_disk)  # fully JSON-serializable


class TestCli:
    def test_top_once(self, capsys):
        from repro.obs.__main__ import main

        rc = main(
            ["top", "--once", "--workers", "2", "--batches", "3", "--interval", "0.1"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro.obs top" in out
        assert "worker-0" in out
        assert "queueing delay ms" in out

    def test_serve_snapshot_file(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        path = tmp_path / "obs.json"
        rc = main(
            ["serve", "--snapshot", str(path), "--batches", "3", "--no-heartbeats"]
        )
        assert rc == 0
        doc = json.loads(path.read_text())
        assert doc["signals"]["queueing_delay_ms"]["count"] > 0
        workers = [
            w for w in doc["rollup"]["workers"] if w != DRIVER_TIMELINE
        ]
        assert workers
