"""Tests for the video-analytics workload and the Table-2 query corpus."""

import json

import pytest

from repro.common.config import EngineConf, SchedulingMode
from repro.engine.cluster import LocalCluster
from repro.streaming.context import StreamingContext
from repro.streaming.sinks import IdempotentSink
from repro.streaming.sources import FixedBatchSource
from repro.workloads.queries import (
    PARTIAL_MERGE_CATEGORIES,
    TABLE2_DISTRIBUTION,
    QueryCorpusGenerator,
    WorkloadAnalyzer,
)
from repro.workloads.video import (
    SessionSummary,
    VideoWorkload,
    attach_session_query,
    parse_heartbeat,
)


class TestSessionSummary:
    def test_merge(self):
        a = SessionSummary(events=2, buffering_events=1, bitrate_sum=3000, last_event_time=5.0)
        b = SessionSummary(events=1, buffering_events=0, bitrate_sum=800, last_event_time=9.0)
        m = a.merge(b)
        assert m.events == 3
        assert m.buffering_events == 1
        assert m.bitrate_sum == 3800
        assert m.last_event_time == 9.0

    def test_derived_metrics(self):
        s = SessionSummary(events=4, buffering_events=1, bitrate_sum=4000)
        assert s.buffering_ratio == 0.25
        assert s.avg_bitrate == 1000
        assert SessionSummary().buffering_ratio == 0.0
        assert SessionSummary().avg_bitrate == 0.0


class TestVideoGenerator:
    def test_heartbeat_shape(self):
        w = VideoWorkload(seed=3)
        e = json.loads(w.make_heartbeat(7.0))
        assert e["event_time"] == 7.0
        assert e["session_id"].startswith("session-")
        assert e["player_state"] in ("playing", "buffering", "paused")

    def test_deterministic(self):
        assert VideoWorkload(seed=9).generate(30, 5.0) == VideoWorkload(seed=9).generate(30, 5.0)

    def test_session_popularity_skewed(self):
        """Zipf skew: the most popular session gets far more heartbeats
        than a uniform share (this drives the Fig. 9 tail)."""
        w = VideoWorkload(num_sessions=50, seed=1)
        events = w.generate(3000, 100.0)
        counts = {}
        for raw in events:
            sid = json.loads(raw)["session_id"]
            counts[sid] = counts.get(sid, 0) + 1
        top = max(counts.values())
        uniform_share = 3000 / 50
        assert top > 4 * uniform_share

    def test_heavier_than_yahoo_records(self):
        from repro.workloads.yahoo import YahooWorkload

        video = VideoWorkload(seed=1).make_heartbeat(0.0)
        yahoo = YahooWorkload(seed=1).make_event(0.0)
        assert len(video) > len(yahoo)

    def test_expected_summaries(self):
        w = VideoWorkload(seed=4)
        events = w.generate(100, 10.0)
        summaries = w.expected_summaries(events)
        assert sum(s.events for s in summaries.values()) == 100


class TestVideoPipeline:
    def test_session_query_on_engine(self):
        w = VideoWorkload(num_sessions=20, seed=5)
        events = w.generate(200, 20.0)
        batches = [events[i::4] for i in range(4)]
        conf = EngineConf(num_workers=3, scheduling_mode=SchedulingMode.DRIZZLE, group_size=2)
        with LocalCluster(conf) as cluster:
            ctx = StreamingContext(cluster, FixedBatchSource(batches, 4), 0.05)
            store = ctx.state_store("sessions")
            sink = IdempotentSink()
            attach_session_query(ctx, store, sink)
            ctx.run_batches(4)
            expected = w.expected_summaries(events)
            got = dict(store.items())
            assert set(got) == set(expected)
            for sid, summary in expected.items():
                assert got[sid].events == summary.events
                assert got[sid].buffering_events == summary.buffering_events
                assert got[sid].bitrate_sum == pytest.approx(summary.bitrate_sum)


class TestQueryCorpus:
    def test_distribution_sums_to_100(self):
        assert sum(TABLE2_DISTRIBUTION.values()) == pytest.approx(100.0)

    def test_aggregation_fraction(self):
        gen = QueryCorpusGenerator(seed=1)
        result = WorkloadAnalyzer().analyze(gen.generate(20_000))
        # The paper: ~25 % of queries use one or more aggregations.
        assert 0.23 < result.aggregation_fraction < 0.27

    def test_partial_merge_share_above_95_percent(self):
        gen = QueryCorpusGenerator(seed=2)
        result = WorkloadAnalyzer().analyze(gen.generate(30_000))
        assert result.partial_merge_fraction > 0.95

    def test_category_percentages_match_table2(self):
        gen = QueryCorpusGenerator(seed=3)
        result = WorkloadAnalyzer().analyze(gen.generate(60_000))
        got = result.category_percentages()
        for category, expected in TABLE2_DISTRIBUTION.items():
            assert got[category] == pytest.approx(expected, abs=1.5)

    def test_analyzer_classifies_functions(self):
        analyzer = WorkloadAnalyzer()
        assert analyzer.categories_of("SELECT COUNT(x) FROM t") == ["Count"]
        assert analyzer.categories_of("SELECT sum(x) FROM t") == ["Sum/Min/Max"]
        assert analyzer.categories_of("SELECT FIRST(x), MEDIAN(y) FROM t") == [
            "First/Last",
            "Other",
        ]
        assert analyzer.categories_of("SELECT x FROM t") == []

    def test_mixed_query_attributed_to_least_mergeable(self):
        analyzer = WorkloadAnalyzer()
        result = analyzer.analyze(["SELECT COUNT(a), MEDIAN(b) FROM t"])
        assert result.category_counts == {"Other": 1}
        assert result.partial_merge_fraction == 0.0

    def test_non_aggregate_functions_ignored(self):
        analyzer = WorkloadAnalyzer()
        assert analyzer.categories_of("SELECT UPPER(name) FROM t") == []

    def test_partial_merge_categories(self):
        assert "Count" in PARTIAL_MERGE_CATEGORIES
        assert "Other" not in PARTIAL_MERGE_CATEGORIES
        assert "User Defined Function" not in PARTIAL_MERGE_CATEGORIES

    def test_empty_corpus(self):
        result = WorkloadAnalyzer().analyze([])
        assert result.aggregation_fraction == 0.0
        assert result.partial_merge_fraction == 0.0
        assert all(v == 0.0 for v in result.category_percentages().values())
