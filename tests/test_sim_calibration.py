"""Calibration tests: the cost model must reproduce the paper's anchor
numbers (see the docstring in repro/sim/costmodel.py for the anchor list).
If someone retunes a constant and breaks an anchor, these tests catch it.
"""

import pytest

from repro.sim.costmodel import DEFAULT_COST_MODEL as COST
from repro.sim.microbench import MicroBenchConfig, run_microbenchmark


class TestFig4aAnchors:
    def test_spark_at_128_machines_near_195ms(self):
        coord = COST.spark_batch_coordination(128, {0: 512})
        assert 0.17 <= coord <= 0.22  # paper: ~195 ms

    def test_drizzle_g100_under_5ms(self):
        per_batch = COST.drizzle_per_batch_coordination(128, {0: 512}, 100)
        assert per_batch < 5e-3  # paper: "less than 5ms per micro-batch"

    def test_speedup_range_7_to_46x(self):
        speedups = []
        for machines in (4, 8, 16, 32, 64, 128):
            tasks = {0: machines * 4}
            spark = run_microbenchmark(
                MicroBenchConfig(mode="spark", machines=machines)
            ).time_per_batch_s
            drizzle = run_microbenchmark(
                MicroBenchConfig(mode="drizzle", machines=machines, group_size=100)
            ).time_per_batch_s
            speedups.append(spark / drizzle)
        # Paper: 7-46x across cluster sizes; allow modest slack.
        assert 4.0 <= min(speedups) <= 10.0
        assert 30.0 <= max(speedups) <= 55.0
        assert speedups == sorted(speedups)  # grows with cluster size


class TestFig5bAnchors:
    def test_prescheduling_alone_saves_about_20ms_at_128(self):
        spark = COST.spark_batch_coordination(128, {0: 512, 1: 16})
        pre = COST.prescheduled_batch_coordination(128, {0: 512, 1: 16})
        saving = spark - pre
        assert 0.015 <= saving <= 0.030  # paper: "limited to only 20ms"

    def test_two_stage_drizzle_batch_near_45ms(self):
        r = run_microbenchmark(
            MicroBenchConfig(mode="drizzle", machines=128, group_size=100, num_reducers=16)
        )
        assert 0.035 <= r.time_per_batch_s <= 0.060  # paper: ~45 ms

    def test_two_stage_speedup_2_7_to_5_5x(self):
        ratios = []
        for machines in (8, 32, 128):
            spark = run_microbenchmark(
                MicroBenchConfig(mode="spark", machines=machines, num_reducers=16)
            ).time_per_batch_s
            drizzle = run_microbenchmark(
                MicroBenchConfig(
                    mode="drizzle", machines=machines, group_size=100, num_reducers=16
                )
            ).time_per_batch_s
            ratios.append(spark / drizzle)
        assert 2.0 <= min(ratios)
        assert max(ratios) <= 6.5  # paper: 2.7x-5.5x


class TestScalingShape:
    def test_spark_overhead_grows_superlinearly_in_tasks(self):
        small = COST.spark_batch_coordination(4, {0: 16})
        big = COST.spark_batch_coordination(128, {0: 512})
        assert big > 15 * small

    def test_group_coordination_sublinear_in_group_size(self):
        g10 = COST.drizzle_group_coordination(128, {0: 512}, 10)
        g100 = COST.drizzle_group_coordination(128, {0: 512}, 100)
        assert g100 < 10 * g10  # amortization: 10x batches < 10x cost

    def test_fetch_time_grows_with_maps(self):
        assert COST.shuffle_fetch_time(512, 1e6) > COST.shuffle_fetch_time(16, 1e6)

    def test_wave_time(self):
        assert COST.stage_wave_time(512, 512, 1e-3) == pytest.approx(1e-3)
        assert COST.stage_wave_time(513, 512, 1e-3) == pytest.approx(2e-3)
        with pytest.raises(ValueError):
            COST.stage_wave_time(1, 0, 1e-3)

    def test_continuous_restart_grows_with_machines(self):
        assert COST.continuous_restart_time(128) > COST.continuous_restart_time(16)
        assert 8.0 <= COST.continuous_restart_time(128) <= 20.0

    def test_with_overrides(self):
        model = COST.with_overrides(rpc_send_s=1.0)
        assert model.rpc_send_s == 1.0
        assert COST.rpc_send_s != 1.0  # frozen original untouched
