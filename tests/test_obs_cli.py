"""Exporter and CLI tests: Perfetto/JSONL round trips, trace_event
validity, the ``python -m repro.obs`` commands, and the acceptance
contract that span totals from a real run agree with the engine's
metrics counters to within 5%."""

import json

import pytest

from repro.common.config import SchedulingMode, TracingConf
from repro.common.metrics import TIME_COMPUTE, TIME_SCHEDULING, TIME_TASK_TRANSFER
from repro.obs.__main__ import main as obs_main
from repro.obs.analyze import phase_totals
from repro.obs.export import load_trace, to_trace_events, write_jsonl, write_perfetto
from repro.obs.names import (
    SPAN_TASK_COMPUTE,
    SPAN_TASK_LAUNCH_RPC,
    SPAN_TASK_SCHEDULE,
    SPAN_TO_METRIC,
)

from engine_test_utils import make_cluster
from test_obs_propagation import keyed_plan

TRACED = TracingConf(enabled=True)


@pytest.fixture(scope="module")
def traced_run():
    """One traced engine run shared by the read-only tests below."""
    with make_cluster(SchedulingMode.DRIZZLE, tracing=TRACED, group_size=3) as cluster:
        plans = [keyed_plan(offset=b) for b in range(3)]
        cluster.run_group(plans)
        events = cluster.tracer.events()
        counters = cluster.metrics.counters_snapshot()
    assert events
    return events, counters


class TestPerfettoValidity:
    def test_document_shape(self, traced_run):
        events, _ = traced_run
        doc = to_trace_events(events)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        entries = doc["traceEvents"]
        metadata = [e for e in entries if e["ph"] == "M"]
        durations = [e for e in entries if e["ph"] == "X"]
        instants = [e for e in entries if e["ph"] == "i"]
        assert len(metadata) + len(durations) + len(instants) == len(entries)
        # Every actor gets a process_name metadata record; every event's
        # pid resolves to one of them.
        named_pids = {e["pid"]: e["args"]["name"] for e in metadata}
        actors = {e["actor"] for e in events}
        assert set(named_pids.values()) == actors
        for entry in durations + instants:
            assert entry["pid"] in named_pids
            assert entry["ts"] >= 0  # microseconds
        for entry in durations:
            assert entry["dur"] >= 0
        for entry in instants:
            assert entry["s"] == "t"

    def test_driver_is_process_one(self, traced_run):
        events, _ = traced_run
        doc = to_trace_events(events)
        first_meta = next(e for e in doc["traceEvents"] if e["ph"] == "M")
        assert first_meta == {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "driver"},
        }

    def test_file_is_plain_json(self, traced_run, tmp_path):
        events, _ = traced_run
        path = str(tmp_path / "trace.json")
        write_perfetto(events, path)
        with open(path) as f:
            doc = json.load(f)  # must parse standalone, no trailing junk
        assert len(doc["traceEvents"]) >= len(events)


class TestRoundTrips:
    def test_perfetto_round_trip_is_lossless(self, traced_run, tmp_path):
        events, _ = traced_run
        path = str(tmp_path / "trace.json")
        write_perfetto(events, path)
        loaded = load_trace(path)
        assert len(loaded) == len(events)
        for orig, back in zip(events, loaded):
            assert back["name"] == orig["name"]
            assert back["trace_id"] == orig["trace_id"]
            assert back["span_id"] == orig["span_id"]
            assert back["parent_id"] == orig["parent_id"]
            assert back["actor"] == orig["actor"]
            assert back["ts"] == pytest.approx(orig["ts"], abs=1e-9)
            assert back["dur"] == pytest.approx(orig["dur"], abs=1e-9)
            assert back["attrs"] == {k: _jsonify(v) for k, v in orig["attrs"].items()}

    def test_jsonl_round_trip_is_identical(self, traced_run, tmp_path):
        events, _ = traced_run
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(events, path)
        assert load_trace(path) == json.loads(json.dumps(events, default=str))

    def test_load_bare_trace_event_array(self, traced_run, tmp_path):
        events, _ = traced_run
        path = str(tmp_path / "bare.json")
        with open(path, "w") as f:
            json.dump(to_trace_events(events)["traceEvents"], f, default=str)
        assert len(load_trace(path)) == len(events)

    def test_load_empty_file(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        assert load_trace(path) == []


def _jsonify(value):
    return json.loads(json.dumps(value, default=str))


class TestCli:
    def test_summarize_totals_agree_with_counters(self, traced_run, tmp_path, capsys):
        """Acceptance criterion: per-phase span totals reported by the CLI
        agree with the engine's MetricsRegistry counters within 5%."""
        events, counters = traced_run
        path = str(tmp_path / "trace.json")
        write_perfetto(events, path)
        assert obs_main(["summarize", path]) == 0
        out = capsys.readouterr().out
        assert "Per-phase totals" in out
        assert "Per-batch breakdown" in out
        assert "Per-worker breakdown" in out
        assert "3 batches" in out

        totals = phase_totals(load_trace(path))
        for span_name, metric_name in SPAN_TO_METRIC.items():
            counter_val = counters[metric_name]
            assert counter_val > 0
            assert totals[span_name] == pytest.approx(counter_val, rel=0.05), (
                f"{span_name} vs {metric_name}"
            )

    def test_tree_shows_propagated_structure(self, traced_run, tmp_path, capsys):
        events, _ = traced_run
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(events, path)
        assert obs_main(["tree", path]) == 0
        out = capsys.readouterr().out
        assert "batch" in out and "task.compute" in out

        # Restricting to one trace id prints only that trace.
        batch_tid = next(e["trace_id"] for e in events if e["name"] == "batch")
        assert obs_main(["tree", path, "--trace-id", batch_tid]) == 0
        out = capsys.readouterr().out
        assert out.count("trace ") == 1
        assert f"trace {batch_tid}" in out

    def test_convert_both_directions(self, traced_run, tmp_path, capsys):
        events, _ = traced_run
        jsonl = str(tmp_path / "a.jsonl")
        perfetto = str(tmp_path / "b.json")
        back = str(tmp_path / "c.jsonl")
        write_jsonl(events, jsonl)
        assert obs_main(["convert", jsonl, "-o", perfetto]) == 0
        assert obs_main(["convert", perfetto, "-o", back, "--format", "jsonl"]) == 0
        capsys.readouterr()
        assert len(load_trace(back)) == len(events)

    def test_empty_trace_exits_nonzero(self, tmp_path, capsys):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        assert obs_main(["summarize", path]) == 1
        assert "trace is empty" in capsys.readouterr().out


class TestClusterExport:
    def test_export_trace_formats(self, tmp_path):
        with make_cluster(SchedulingMode.DRIZZLE, tracing=TRACED) as cluster:
            cluster.run_plan(keyed_plan())
            n = len(cluster.tracer.events())
            json_path = str(tmp_path / "t.json")
            jsonl_path = str(tmp_path / "t.jsonl")
            assert cluster.export_trace(json_path) == n
            assert cluster.export_trace(jsonl_path, fmt="jsonl") == n
            with pytest.raises(ValueError):
                cluster.export_trace(str(tmp_path / "t.x"), fmt="csv")
        assert len(load_trace(json_path)) == n
        assert len(load_trace(jsonl_path)) == n

    def test_spans_cover_the_whole_pipeline(self, traced_run):
        events, _ = traced_run
        names = {e["name"] for e in events}
        assert {
            SPAN_TASK_SCHEDULE,
            SPAN_TASK_LAUNCH_RPC,
            SPAN_TASK_COMPUTE,
        } <= names
