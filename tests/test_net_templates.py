"""Execution templates over the wire: the instantiate_template fast path,
the ``template_miss`` reship fallback (mirroring the stage_miss tests in
``test_net_dataplane.py``), invalidation on membership change and worker
re-announce, and the end-to-end tcp cluster behaviour."""

from repro.common.config import (
    EngineConf,
    SchedulingMode,
    TemplateConf,
    TransportConf,
)
from repro.common.metrics import (
    COUNT_NET_LAUNCH_BYTES_SENT,
    COUNT_NET_TEMPLATE_BYTES_SAVED,
    COUNT_RPC_MESSAGES,
    COUNT_TEMPLATE_HIT,
    COUNT_TEMPLATE_INVALIDATED,
    COUNT_TEMPLATE_MISS,
    HIST_NET_CALL_LATENCY,
    MetricsRegistry,
)
from repro.core.templates import PlanDigestCache, TemplateStore, compute_template_id
from repro.dag.dataset import parallelize
from repro.dag.plan import collect_action, compile_plan
from repro.engine.cluster import LocalCluster
from repro.engine.rpc import INSTANTIATE_TEMPLATE
from repro.engine.task import TaskDescriptor, TaskId
from repro.net import TcpTransport


def _plan():
    return compile_plan(
        parallelize([1, 2, 3], 2).map(lambda x: x + 1), collect_action()
    )


def _descriptors(plan, job_id=0, n=2):
    return [
        TaskDescriptor(task_id=TaskId(job_id, 0, p), plan=plan, pre_scheduled=True)
        for p in range(n)
    ]


def _tcp(metrics=None, hub_addr=None, name=None, **conf_kwargs):
    conf_kwargs.setdefault("backend", "tcp")
    conf_kwargs.setdefault("max_retries", 1)
    conf_kwargs.setdefault("retry_backoff_s", 0.001)
    return TcpTransport(
        metrics or MetricsRegistry(),
        conf=TransportConf(**conf_kwargs),
        hub_addr=hub_addr,
        name=name,
    )


class _TemplateSink:
    """Worker stand-in speaking the template side of the launch protocol
    (a real Worker does exactly this in launch_tasks/instantiate_template)."""

    def __init__(self):
        self.store = TemplateStore()
        self.launches = []  # full (template-installing) launches
        self.instantiations = []  # instantiate_template deliveries

    def launch_tasks(self, descriptors, template=None):
        self.launches.append(descriptors)
        if template is not None:
            template_id, batch_ids, epoch = template
            self.store.install(template_id, epoch, descriptors, batch_ids)
        return "accepted"

    def instantiate_template(self, template_id, batch_ids, epoch):
        descriptors = self.store.instantiate(template_id, batch_ids, epoch)
        if descriptors is None:
            return False
        self.instantiations.append(descriptors)
        return True


def _meta(descriptors, batch_ids, cache, epoch=0):
    return (compute_template_id(descriptors, batch_ids, cache), batch_ids, epoch)


class TestTcpTemplates:
    def test_steady_state_hits_after_one_full_launch(self):
        hub = _tcp(name="hub")
        peer = _tcp(hub_addr=hub.address, name="peer")
        try:
            sink = _TemplateSink()
            peer.register("worker", sink)
            plan, cache = _plan(), PlanDigestCache()

            hub.call(
                "worker",
                "launch_tasks",
                _descriptors(plan, job_id=0),
                _meta(_descriptors(plan, job_id=0), (0,), cache),
            )
            assert hub.metrics.counter(COUNT_TEMPLATE_MISS).value == 1
            assert len(sink.launches) == 1

            for job_id in (1, 2, 3):
                rpc_before = hub.metrics.counter(COUNT_RPC_MESSAGES).value
                descs = _descriptors(plan, job_id=job_id)
                hub.call(
                    "worker", "launch_tasks", descs, _meta(descs, (job_id,), cache)
                )
                # The template tier is still one counted RPC per launch.
                assert (
                    hub.metrics.counter(COUNT_RPC_MESSAGES).value == rpc_before + 1
                )
            assert hub.metrics.counter(COUNT_TEMPLATE_HIT).value == 3
            assert len(sink.launches) == 1  # no further full payloads
            assert len(sink.instantiations) == 3
            # Substitution delivered the *new* batch ids.
            assert [d.task_id.job_id for d in sink.instantiations[-1]] == [3, 3]
            # The tier is visible: its own latency histogram and a
            # strictly positive wire saving against the full launch.
            hist = hub.metrics.histogram(
                f"{HIST_NET_CALL_LATENCY}.{INSTANTIATE_TEMPLATE}"
            )
            assert len(hist.snapshot()) == 3
            assert hub.metrics.counter(COUNT_NET_TEMPLATE_BYTES_SAVED).value > 0
        finally:
            peer.close()
            hub.close()

    def test_template_miss_reships_full_launch_uncounted(self):
        hub = _tcp(name="hub")
        peer = _tcp(hub_addr=hub.address, name="peer")
        try:
            sink = _TemplateSink()
            peer.register("worker", sink)
            plan, cache = _plan(), PlanDigestCache()

            first = _descriptors(plan, job_id=0)
            hub.call("worker", "launch_tasks", first, _meta(first, (0,), cache))
            # The worker loses its template cache (restart, eviction); the
            # hub still believes it holds the template.
            sink.store.invalidate_all()

            rpc_before = hub.metrics.counter(COUNT_RPC_MESSAGES).value
            second = _descriptors(plan, job_id=1)
            hub.call("worker", "launch_tasks", second, _meta(second, (1,), cache))
            # Renegotiation is plumbing: one call() = one counted message.
            assert hub.metrics.counter(COUNT_RPC_MESSAGES).value == rpc_before + 1
            assert hub.metrics.counter(COUNT_TEMPLATE_HIT).value == 0
            assert hub.metrics.counter(COUNT_TEMPLATE_MISS).value == 2
            assert len(sink.launches) == 2 and len(sink.instantiations) == 0
            # The reship re-installed it: the next launch hits again.
            third = _descriptors(plan, job_id=2)
            hub.call("worker", "launch_tasks", third, _meta(third, (2,), cache))
            assert hub.metrics.counter(COUNT_TEMPLATE_HIT).value == 1
        finally:
            peer.close()
            hub.close()

    def test_stale_epoch_instantiate_refused_then_reinstalled(self):
        """A worker holding an epoch-0 template refuses an epoch-1
        instantiate — wrong-epoch results are structurally impossible; the
        sender degrades to a full launch under the new epoch."""
        hub = _tcp(name="hub")
        peer = _tcp(hub_addr=hub.address, name="peer")
        try:
            sink = _TemplateSink()
            peer.register("worker", sink)
            plan, cache = _plan(), PlanDigestCache()
            first = _descriptors(plan, job_id=0)
            hub.call("worker", "launch_tasks", first, _meta(first, (0,), cache))

            # Membership changed: driver bumps the epoch and clears the
            # sender (exactly what Driver._bump_template_epoch does).
            hub.invalidate_templates()
            assert hub.metrics.counter(COUNT_TEMPLATE_INVALIDATED).value == 1

            second = _descriptors(plan, job_id=1)
            hub.call(
                "worker", "launch_tasks", second, _meta(second, (1,), cache, epoch=1)
            )
            # Full launch (sender no longer holds it), installed at epoch 1.
            assert len(sink.launches) == 2 and len(sink.instantiations) == 0
            # And the stale epoch-0 copy was evicted on install.
            assert sink.store.instantiate(
                _meta(second, (1,), cache)[0], (9,), 0
            ) is None
            third = _descriptors(plan, job_id=2)
            hub.call(
                "worker", "launch_tasks", third, _meta(third, (2,), cache, epoch=1)
            )
            assert hub.metrics.counter(COUNT_TEMPLATE_HIT).value == 1
        finally:
            peer.close()
            hub.close()

    def test_reannounce_at_new_port_forgets_templates(self):
        hub = _tcp(name="hub")
        first = _tcp(hub_addr=hub.address, name="workerB-1")
        second = None
        try:
            sink1 = _TemplateSink()
            first.register("workerB", sink1)
            plan, cache = _plan(), PlanDigestCache()
            descs = _descriptors(plan, job_id=0)
            hub.call("workerB", "launch_tasks", descs, _meta(descs, (0,), cache))

            old_addr = first.address
            first.close()  # worker process dies...
            second = _tcp(hub_addr=hub.address, name="workerB-2")
            sink2 = _TemplateSink()
            second.register("workerB", sink2)  # ...and re-announces
            hub.pool.invalidate(old_addr)
            # Re-registration dropped the peer's shipped set, so this is a
            # full launch against the fresh worker — never an instantiate
            # against a cache that died with the old process.
            assert hub.metrics.counter(COUNT_TEMPLATE_INVALIDATED).value == 1
            descs2 = _descriptors(plan, job_id=1)
            hub.call("workerB", "launch_tasks", descs2, _meta(descs2, (1,), cache))
            assert len(sink2.launches) == 1 and len(sink2.instantiations) == 0
        finally:
            for t in (second, first, hub):
                if t is not None:
                    t.close()

    def test_plain_launch_without_meta_untouched(self):
        """The 1-arg launch path (recovery resubmissions, templates off)
        is byte-for-byte the PR 4 stage-blob protocol."""
        hub = _tcp(name="hub")
        peer = _tcp(hub_addr=hub.address, name="peer")
        try:
            sink = _TemplateSink()
            peer.register("worker", sink)
            plan = _plan()
            assert (
                hub.call("worker", "launch_tasks", _descriptors(plan)) == "accepted"
            )
            assert hub.metrics.counter(COUNT_TEMPLATE_MISS).value == 0
            assert hub.metrics.counter(COUNT_NET_LAUNCH_BYTES_SENT).value > 0
            assert len(sink.store) == 0
        finally:
            peer.close()
            hub.close()


# ----------------------------------------------------------------------
# End-to-end: tcp LocalCluster with templates enabled
# ----------------------------------------------------------------------
def _template_cluster(workers=2, **conf_kwargs):
    conf = EngineConf(
        num_workers=workers,
        slots_per_worker=2,
        scheduling_mode=SchedulingMode.DRIZZLE,
        transport=TransportConf(backend="tcp"),
        templates=TemplateConf(enabled=True),
        **conf_kwargs,
    )
    return LocalCluster(conf)


def _job(cluster, tag=2):
    dataset = parallelize(list(range(20)), 4).map(lambda x: x * tag)
    result = cluster.collect(dataset)
    assert sorted(result) == sorted(x * tag for x in range(20))


class TestTcpClusterTemplates:
    def test_repeat_jobs_hit_templates_and_stay_correct(self):
        with _template_cluster() as cluster:
            for _ in range(3):
                _job(cluster)
            metrics = cluster.metrics
            assert metrics.counter(COUNT_TEMPLATE_MISS).value == 2  # 1 per worker
            assert metrics.counter(COUNT_TEMPLATE_HIT).value == 4  # 2 rounds x 2
            assert metrics.counter(COUNT_NET_TEMPLATE_BYTES_SAVED).value > 0

    def test_worker_kill_invalidates_and_recovers(self):
        """Membership change mid-stream (the chaos ``workers`` profile's
        worker_kill): templates from the old epoch are dropped on both
        sides and the next group falls back to a full launch — correct
        results, no wrong-epoch instantiations."""
        with _template_cluster(workers=3) as cluster:
            for _ in range(2):
                _job(cluster)
            assert cluster.metrics.counter(COUNT_TEMPLATE_HIT).value > 0
            hits_before = cluster.metrics.counter(COUNT_TEMPLATE_HIT).value

            cluster.kill_worker("worker-1")
            assert cluster.metrics.counter(COUNT_TEMPLATE_INVALIDATED).value > 0

            # Next job replans over the survivors: full launches first
            # (no hit), then steady-state hits resume on the new epoch.
            _job(cluster, tag=3)
            assert cluster.metrics.counter(COUNT_TEMPLATE_HIT).value == hits_before
            _job(cluster, tag=3)
            assert cluster.metrics.counter(COUNT_TEMPLATE_HIT).value > hits_before

    def test_added_worker_invalidates_templates(self):
        with _template_cluster(workers=2) as cluster:
            for _ in range(2):
                _job(cluster)
            invalidated = cluster.metrics.counter(COUNT_TEMPLATE_INVALIDATED).value
            cluster.add_worker()
            assert (
                cluster.metrics.counter(COUNT_TEMPLATE_INVALIDATED).value
                > invalidated
            )
            _job(cluster, tag=5)  # replanned over 3 workers, still correct

    def test_templates_disabled_by_default(self):
        conf = EngineConf(
            num_workers=2,
            slots_per_worker=2,
            scheduling_mode=SchedulingMode.DRIZZLE,
            transport=TransportConf(backend="tcp"),
            templates=TemplateConf(enabled=False),
        )
        with LocalCluster(conf) as cluster:
            for _ in range(2):
                _job(cluster)
            assert cluster.metrics.counter(COUNT_TEMPLATE_MISS).value == 0
            assert cluster.metrics.counter(COUNT_TEMPLATE_HIT).value == 0
