"""Tests for group-scheduling policy (§3.1): placement and planning."""

import pytest
from hypothesis import given, strategies as st

from repro.core.groups import (
    CoordinationLedger,
    PlacementPolicy,
    StageTemplate,
    plan_group,
)


def two_stage_templates(num_maps=6, num_reduces=3):
    return [
        StageTemplate(stage_index=0, num_tasks=num_maps, is_shuffle_map=True, shuffle_id=0),
        StageTemplate(stage_index=1, num_tasks=num_reduces, is_shuffle_map=False),
    ]


class TestPlacementPolicy:
    def test_requires_workers(self):
        with pytest.raises(ValueError):
            PlacementPolicy([], 2)

    def test_requires_slots(self):
        with pytest.raises(ValueError):
            PlacementPolicy(["w0"], 0)

    def test_deterministic(self):
        # Same inputs -> same placement; the §3.1 reuse argument needs this.
        a = PlacementPolicy(["w1", "w0"], 2).assign(two_stage_templates())
        b = PlacementPolicy(["w0", "w1"], 2).assign(two_stage_templates())
        assert a.by_stage == b.by_stage

    def test_round_robin_spreads_tasks(self):
        assignment = PlacementPolicy(["w0", "w1", "w2"], 2).assign(
            two_stage_templates(num_maps=6)
        )
        workers = [slot.worker_id for slot in assignment.by_stage[0]]
        assert sorted(set(workers)) == ["w0", "w1", "w2"]
        # Even split: 2 tasks per worker.
        assert all(workers.count(w) == 2 for w in set(workers))

    def test_locality_preference_honoured(self):
        templates = [
            StageTemplate(
                stage_index=0,
                num_tasks=3,
                is_shuffle_map=False,
                locality=["w2", None, "w2"],
            )
        ]
        assignment = PlacementPolicy(["w0", "w1", "w2"], 2).assign(templates)
        workers = [slot.worker_id for slot in assignment.by_stage[0]]
        assert workers[0] == "w2"
        assert workers[2] == "w2"

    def test_locality_ignored_for_dead_worker(self):
        templates = [
            StageTemplate(
                stage_index=0, num_tasks=1, is_shuffle_map=False, locality=["ghost"]
            )
        ]
        assignment = PlacementPolicy(["w0"], 1).assign(templates)
        assert assignment.by_stage[0][0].worker_id == "w0"

    def test_tasks_for_worker(self):
        assignment = PlacementPolicy(["w0", "w1"], 2).assign(two_stage_templates(4, 2))
        mine = assignment.tasks_for_worker("w0")
        theirs = assignment.tasks_for_worker("w1")
        assert len(mine) + len(theirs) == 6
        assert set(mine).isdisjoint(theirs)

    @given(
        st.integers(1, 8),
        st.integers(1, 4),
        st.integers(1, 40),
    )
    def test_every_task_placed_on_known_worker(self, n_workers, slots, n_tasks):
        workers = [f"w{i}" for i in range(n_workers)]
        templates = [
            StageTemplate(stage_index=0, num_tasks=n_tasks, is_shuffle_map=False)
        ]
        assignment = PlacementPolicy(workers, slots).assign(templates)
        placed = assignment.by_stage[0]
        assert len(placed) == n_tasks
        assert all(slot.worker_id in workers for slot in placed)
        assert all(0 <= slot.slot < slots for slot in placed)


class TestGroupPlan:
    def test_plan_group_batches(self):
        policy = PlacementPolicy(["w0", "w1"], 2)
        plan = plan_group(0, first_batch=10, group_size=5, policy=policy,
                          stages=two_stage_templates())
        assert plan.batch_indices == (10, 11, 12, 13, 14)
        assert plan.size == 5

    def test_plan_group_rejects_zero(self):
        policy = PlacementPolicy(["w0"], 1)
        with pytest.raises(ValueError):
            plan_group(0, 0, 0, policy, two_stage_templates())

    def test_single_assignment_shared_across_batches(self):
        policy = PlacementPolicy(["w0", "w1"], 2)
        plan = plan_group(0, 0, 3, policy, two_stage_templates())
        # One Assignment object for the whole group - scheduling decisions
        # are computed once (the point of §3.1).
        assert plan.assignment is plan.assignment


class TestCoordinationLedger:
    def test_overhead_fraction(self):
        ledger = CoordinationLedger(
            scheduling_s=0.1, task_transfer_s=0.1, compute_s=1.0, wall_s=1.0
        )
        assert ledger.coordination_s == pytest.approx(0.2)
        assert ledger.overhead_fraction == pytest.approx(0.2)

    def test_zero_wall_is_zero_overhead(self):
        assert CoordinationLedger().overhead_fraction == 0.0

    def test_fraction_capped_at_one(self):
        ledger = CoordinationLedger(scheduling_s=5.0, wall_s=1.0)
        assert ledger.overhead_fraction == 1.0

    def test_merge(self):
        a = CoordinationLedger(0.1, 0.2, 0.3, 1.0)
        b = CoordinationLedger(0.1, 0.1, 0.1, 0.5)
        a.merge(b)
        assert a.scheduling_s == pytest.approx(0.2)
        assert a.task_transfer_s == pytest.approx(0.3)
        assert a.wall_s == pytest.approx(1.5)
