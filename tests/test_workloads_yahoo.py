"""Tests for the Yahoo Streaming Benchmark workload — including the
cross-engine agreement test: the micro-batch implementation (both data
planes) and the continuous implementation must produce identical window
counts on the same event log."""

import json

import pytest

from repro.common.config import EngineConf, SchedulingMode
from repro.engine.cluster import LocalCluster
from repro.streaming.context import StreamingContext
from repro.streaming.sinks import IdempotentSink
from repro.streaming.sources import FixedBatchSource, LogSource, RecordLog
from repro.workloads.yahoo import (
    YahooWorkload,
    attach_microbatch_query,
    build_continuous_job,
    parse_and_key,
)


@pytest.fixture(scope="module")
def workload():
    return YahooWorkload(num_campaigns=5, ads_per_campaign=2, seed=11)


class TestGenerator:
    def test_events_are_json_with_fields(self, workload):
        e = json.loads(workload.make_event(3.5))
        assert e["event_time"] == 3.5
        assert e["ad_id"] in workload.ad_to_campaign
        assert e["event_type"] in ("view", "click", "purchase")

    def test_deterministic_given_seed(self):
        a = YahooWorkload(seed=5).generate(20, 10.0)
        b = YahooWorkload(seed=5).generate(20, 10.0)
        assert a == b

    def test_event_times_span_range(self, workload):
        events = workload.generate(100, 50.0)
        times = [json.loads(e)["event_time"] for e in events]
        assert times == sorted(times)
        assert times[0] == 0.0
        assert times[-1] < 50.0

    def test_view_fraction_roughly_honoured(self):
        w = YahooWorkload(view_fraction=0.5, seed=1)
        events = w.generate(2000, 10.0)
        views = sum(1 for e in events if json.loads(e)["event_type"] == "view")
        assert 0.4 < views / 2000 < 0.6

    def test_expected_counts_reference(self, workload):
        events = workload.generate(200, 30.0)
        counts = workload.expected_counts(events, window_s=10.0)
        views = sum(1 for e in events if json.loads(e)["event_type"] == "view")
        assert sum(counts.values()) == views
        assert all(w in (0, 1, 2) for (_c, w) in counts)


class TestParseAndKey:
    def test_view_event_keyed(self, workload):
        raw = json.dumps({"event_time": 12.0, "ad_id": "ad-0-0", "event_type": "view"})
        out = parse_and_key(workload.ad_to_campaign, 10.0)(raw)
        assert out == [(("campaign-0", 1), 1)]

    def test_non_view_dropped(self, workload):
        raw = json.dumps({"event_time": 1.0, "ad_id": "ad-0-0", "event_type": "click"})
        assert parse_and_key(workload.ad_to_campaign, 10.0)(raw) == []

    def test_unknown_ad_dropped(self, workload):
        raw = json.dumps({"event_time": 1.0, "ad_id": "nope", "event_type": "view"})
        assert parse_and_key(workload.ad_to_campaign, 10.0)(raw) == []


def run_microbatch(workload, events, optimized, num_batches=4):
    batches = [events[i::num_batches] for i in range(num_batches)]
    conf = EngineConf(
        num_workers=3, slots_per_worker=2,
        scheduling_mode=SchedulingMode.DRIZZLE, group_size=2,
        map_side_combine=optimized,
    )
    with LocalCluster(conf) as cluster:
        ctx = StreamingContext(cluster, FixedBatchSource(batches, 4), 0.05)
        store = ctx.state_store("windows")
        sink = IdempotentSink()
        attach_microbatch_query(
            ctx, workload, store, sink, window_s=10.0, optimized=optimized
        )
        ctx.run_batches(num_batches)
        return dict(store.items())


class TestMicroBatchQuery:
    @pytest.mark.parametrize("optimized", [True, False])
    def test_matches_reference(self, workload, optimized):
        events = workload.generate(400, 35.0)
        counts = run_microbatch(workload, events, optimized)
        assert counts == workload.expected_counts(events, 10.0)

    def test_optimized_and_unoptimized_agree(self, workload):
        """§3.5: the reduceby (combined) and groupby planes are equivalent."""
        events = workload.generate(300, 25.0)
        assert run_microbatch(workload, events, True) == run_microbatch(
            workload, events, False
        )

    def test_window_emission_with_watermark(self, workload):
        events = workload.generate(300, 30.0)
        # Arrival follows event time: batch b covers [10b, 10(b+1)).
        batches = [events[0:100], events[100:200], events[200:300]]
        conf = EngineConf(num_workers=2, scheduling_mode=SchedulingMode.DRIZZLE,
                          group_size=1)
        with LocalCluster(conf) as cluster:
            ctx = StreamingContext(cluster, FixedBatchSource(batches, 4), 0.05)
            store = ctx.state_store("windows")
            sink = IdempotentSink()
            # Each batch advances the watermark by 10s.
            attach_microbatch_query(
                ctx, workload, store, sink, window_s=10.0,
                watermark_for=lambda b: 10.0 * (b + 1),
            )
            ctx.run_batches(3)
            emitted = sink.all_records()
            # Every emitted triple is a closed window, each exactly once.
            assert len({(k, w) for (k, w, _c) in emitted}) == len(emitted)
            # Watermark reaches 30 s at batch 2, so windows 0-2 all close.
            assert all(w in (0, 1, 2) for (_k, w, _c) in emitted)
            assert sum(c for (_k, _w, c) in emitted) == sum(
                workload.expected_counts(events, 10.0).values()
            )


class TestCrossEngineAgreement:
    def test_continuous_matches_microbatch(self, workload):
        """The Flink-style and Spark/Drizzle-style implementations of the
        benchmark query must compute identical per-window counts."""
        events = workload.generate(400, 40.0)
        micro = run_microbatch(workload, events, optimized=True)

        log = RecordLog(2)
        log.append_round_robin(events)
        sink = IdempotentSink()
        job = build_continuous_job(log, workload, sink, window_s=10.0)
        job.start()
        job.close_input_and_wait(timeout=20)
        continuous = {(k, w): c for (k, w, c) in sink.all_records()}
        assert continuous == micro
