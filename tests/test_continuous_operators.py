"""Unit tests for continuous-operator logic (isolated from threading)."""

import pytest
from hypothesis import given, strategies as st

from repro.continuous.operators import (
    FilterOperator,
    FlatMapOperator,
    KeyedReduceOperator,
    MapOperator,
    Operator,
    OperatorSpec,
    WindowAggOperator,
)


class TestStatelessOperators:
    def test_map(self):
        op = MapOperator(lambda x: x * 2)
        assert list(op.process(3)) == [6]

    def test_filter(self):
        op = FilterOperator(lambda x: x > 0)
        assert list(op.process(5)) == [5]
        assert list(op.process(-5)) == []

    def test_flat_map(self):
        op = FlatMapOperator(lambda x: [x] * x)
        assert list(op.process(3)) == [3, 3, 3]
        assert list(op.process(0)) == []

    def test_stateless_snapshot_roundtrip(self):
        op = MapOperator(lambda x: x)
        assert op.snapshot_state() is None
        op.restore_state(None)
        with pytest.raises(ValueError):
            op.restore_state({"junk": 1})

    def test_base_operator_abstract(self):
        with pytest.raises(NotImplementedError):
            Operator().process(1)


class TestKeyedReduce:
    def test_running_reduction(self):
        op = KeyedReduceOperator(lambda a, b: a + b)
        assert list(op.process(("k", 1))) == [("k", 1)]
        assert list(op.process(("k", 2))) == [("k", 3)]
        assert list(op.process(("j", 5))) == [("j", 5)]

    def test_snapshot_restore(self):
        op = KeyedReduceOperator(lambda a, b: a + b)
        list(op.process(("k", 1)))  # process() is a generator: consume it
        list(op.process(("k", 2)))
        snap = op.snapshot_state()
        op2 = KeyedReduceOperator(lambda a, b: a + b)
        op2.restore_state(snap)
        assert list(op2.process(("k", 4))) == [("k", 7)]

    def test_restore_none_clears(self):
        op = KeyedReduceOperator(lambda a, b: a + b)
        list(op.process(("k", 1)))
        op.restore_state(None)
        assert list(op.process(("k", 1))) == [("k", 1)]


class TestWindowAgg:
    def test_accumulates_until_watermark(self):
        op = WindowAggOperator(lambda a, b: a + b, window_size=10.0)
        assert list(op.process(("k", (1.0, 1)))) == []
        assert list(op.process(("k", (5.0, 1)))) == []
        assert list(op.process(("k", (12.0, 1)))) == []
        out = list(op.on_watermark(10.0))
        assert out == [("k", 0, 2)]
        # Window 1 still open.
        assert list(op.on_watermark(19.0)) == []
        assert list(op.on_watermark(20.0)) == [("k", 1, 1)]

    def test_multiple_keys_sorted_output(self):
        op = WindowAggOperator(lambda a, b: a + b, window_size=10.0)
        op.process(("b", (1.0, 1)))
        op.process(("a", (2.0, 2)))
        out = list(op.on_watermark(10.0))
        assert out == [("a", 0, 2), ("b", 0, 1)]

    def test_on_end_flushes_remaining(self):
        op = WindowAggOperator(lambda a, b: a + b, window_size=10.0)
        op.process(("k", (3.0, 4)))
        assert list(op.on_end()) == [("k", 0, 4)]
        assert list(op.on_end()) == []

    def test_snapshot_restore_roundtrip(self):
        op = WindowAggOperator(lambda a, b: a + b, window_size=10.0)
        op.process(("k", (3.0, 4)))
        snap = op.snapshot_state()
        op2 = WindowAggOperator(lambda a, b: a + b, window_size=10.0)
        op2.restore_state(snap)
        assert list(op2.on_watermark(10.0)) == [("k", 0, 4)]

    def test_bad_window_size(self):
        with pytest.raises(ValueError):
            WindowAggOperator(lambda a, b: a + b, window_size=0)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.floats(0, 100),
                st.integers(1, 5),
            ),
            max_size=50,
        )
    )
    def test_count_conservation(self, events):
        """Every value is emitted exactly once across watermark closes and
        the final flush."""
        op = WindowAggOperator(lambda a, b: a + b, window_size=7.0)
        emitted = []
        for key, t, v in events:
            op.process((key, (t, v)))
        emitted.extend(op.on_watermark(50.0))
        emitted.extend(op.on_end())
        assert sum(v for (_k, _w, v) in emitted) == sum(v for (_k, _t, v) in events)


class TestOperatorSpec:
    def test_validates_parallelism(self):
        with pytest.raises(ValueError):
            OperatorSpec("x", lambda: MapOperator(lambda v: v), parallelism=0)

    def test_validates_partitioning(self):
        with pytest.raises(ValueError):
            OperatorSpec("x", lambda: MapOperator(lambda v: v), 1, partitioning="bogus")
