"""End-to-end integration scenarios combining multiple subsystems.

These are the "would a user's production pipeline survive" tests: the
full Yahoo query with window emission, machine crashes mid-stream,
checkpoint restore on top of engine-level recovery, speculation under a
straggler, and elasticity — all against exact reference answers.
"""

import threading
import time

import pytest

from repro.common.config import EngineConf, SchedulingMode, SpeculationConf, TunerConf
from repro.engine.cluster import LocalCluster
from repro.streaming.context import StreamingContext
from repro.streaming.sinks import IdempotentSink
from repro.streaming.sources import FixedBatchSource
from repro.workloads.yahoo import YahooWorkload, attach_microbatch_query


def time_ordered_batches(events, num_batches):
    per = len(events) // num_batches
    return [events[i * per : (i + 1) * per] for i in range(num_batches)]


class TestYahooEndToEnd:
    def test_full_pipeline_with_crash_and_restore(self):
        """Yahoo query + watermark emission; one machine crashes during
        group 2; afterwards the driver-side state is corrupted and
        restored from checkpoint.  Final output must equal the reference
        exactly, with no duplicate window emissions."""
        workload = YahooWorkload(num_campaigns=8, ads_per_campaign=2, seed=21)
        num_batches = 6
        events = workload.generate(1200, 60.0)
        batches = time_ordered_batches(events, num_batches)
        conf = EngineConf(
            num_workers=4,
            slots_per_worker=2,
            scheduling_mode=SchedulingMode.DRIZZLE,
            group_size=2,
            checkpoint_interval_batches=4,
        )
        with LocalCluster(conf) as cluster:
            ctx = StreamingContext(cluster, FixedBatchSource(batches, 4), 0.05)
            store = ctx.state_store("windows")
            sink = IdempotentSink()
            attach_microbatch_query(
                ctx, workload, store, sink, window_s=10.0, optimized=True,
                watermark_for=lambda b: 10.0 * (b + 1),
            )
            killer = threading.Timer(0.03, lambda: cluster.kill_worker("worker-3"))
            killer.start()
            ctx.run_batches(num_batches)

            emitted = {(k, w): c for (k, w, c) in sink.all_records()}
            # Restore-and-replay after "losing" the driver state.
            store.restore({})
            ctx.restore_and_replay()
            emitted_after = {(k, w): c for (k, w, c) in sink.all_records()}
            assert emitted_after == emitted  # sink dedup: no new emissions

            reference = workload.expected_counts(events, 10.0)
            # Windows 0..4 closed (watermark reached 60 at batch 5 closes
            # 0..5 except the last partial... batch 5 watermark = 60, so
            # windows 0..5 all closed).
            closed_reference = {
                (c, w): n for (c, w), n in reference.items() if (w + 1) * 10.0 <= 60.0
            }
            assert emitted == closed_reference

    def test_tuner_speculation_and_elasticity_together(self):
        """All the adaptive machinery enabled at once on a straggling,
        under-provisioned cluster — results must still be exact."""
        from repro.streaming.elasticity import (
            ElasticityController,
            UtilizationScalingPolicy,
        )

        words = ["a", "b", "c", "d"]
        num_batches = 8
        batches = [
            [words[(b + i) % 4] for i in range(40)] for b in range(num_batches)
        ]
        expected = {}
        for batch in batches:
            for w in batch:
                expected[w] = expected.get(w, 0) + 1

        conf = EngineConf(
            num_workers=3,
            slots_per_worker=2,
            scheduling_mode=SchedulingMode.DRIZZLE,
            group_size=2,
            tuner=TunerConf(enabled=True, max_group_size=4),
            speculation=SpeculationConf(
                enabled=True, check_interval_s=0.02, min_runtime_s=0.05
            ),
        )
        with LocalCluster(conf) as cluster:
            cluster.workers["worker-1"].compute_delay_per_task_s = 0.3  # straggler
            ctx = StreamingContext(cluster, FixedBatchSource(batches, 4), 0.05)
            controller = ElasticityController(
                cluster,
                UtilizationScalingPolicy(batch_interval_s=0.05, max_workers=5),
            )
            ctx.set_elasticity(controller)
            store = ctx.state_store("counts")
            ctx.stream().map(lambda w: (w, 1)).reduce_by_key(
                lambda a, b: a + b, 3
            ).update_state(store, merge=lambda a, b: a + b)
            ctx.run_batches(num_batches)
            assert dict(store.items()) == expected

    def test_crash_during_every_group(self):
        """Sequential crashes across groups: kill a machine in each of the
        first two groups (adding replacements in between)."""
        words = ["x", "y"]
        num_batches = 6
        batches = [[words[i % 2] for i in range(20)] for _b in range(num_batches)]
        conf = EngineConf(
            num_workers=4,
            slots_per_worker=1,
            scheduling_mode=SchedulingMode.DRIZZLE,
            group_size=2,
        )
        with LocalCluster(conf) as cluster:
            ctx = StreamingContext(cluster, FixedBatchSource(batches, 4), 0.05)
            store = ctx.state_store("counts")
            ctx.stream().map(lambda w: (w, 1)).reduce_by_key(
                lambda a, b: a + b, 2
            ).update_state(store, merge=lambda a, b: a + b)

            ctx.run_batches(2)
            cluster.kill_worker("worker-0")
            cluster.add_worker()
            ctx.run_batches(2)
            cluster.kill_worker("worker-1")
            ctx.run_batches(2)
            assert dict(store.items()) == {"x": 60, "y": 60}

    def test_spark_vs_drizzle_full_agreement_on_yahoo(self):
        """The two control planes end to end on identical input."""
        workload = YahooWorkload(num_campaigns=5, seed=9)
        events = workload.generate(600, 30.0)
        batches = time_ordered_batches(events, 3)
        results = {}
        for mode in (SchedulingMode.PER_BATCH, SchedulingMode.DRIZZLE):
            conf = EngineConf(
                num_workers=3, scheduling_mode=mode, group_size=3
            )
            with LocalCluster(conf) as cluster:
                ctx = StreamingContext(cluster, FixedBatchSource(batches, 4), 0.05)
                store = ctx.state_store("w")
                sink = IdempotentSink()
                attach_microbatch_query(ctx, workload, store, sink, optimized=True)
                ctx.run_batches(3)
                results[mode] = dict(store.items())
        assert results[SchedulingMode.PER_BATCH] == results[SchedulingMode.DRIZZLE]
        assert results[SchedulingMode.DRIZZLE] == workload.expected_counts(events, 10.0)
