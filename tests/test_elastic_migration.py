"""Shard migration protocol: extract -> install -> release with abort and
requeue semantics under worker loss (the §3.3 safety argument: a resize
must never be less safe than a crash)."""

import pytest

from repro.chaos.injector import ChaosInjector, install, uninstall
from repro.chaos.plan import (
    KIND_WORKER_KILL,
    SITE_ELASTIC_RESIZE,
    FaultEvent,
    FaultPlan,
)
from repro.common.config import EngineConf
from repro.common.metrics import (
    COUNT_MIGRATION_ABORTS,
    COUNT_MIGRATION_RETRIES,
    COUNT_MIGRATION_SHARDS_MOVED,
)
from repro.elastic.controller import ElasticController
from repro.elastic.migration import MigrationExecutor, refine_with_outcomes
from repro.elastic.policies import ScheduleScalingPolicy
from repro.elastic.shards import HASH_SPACE, ShardMap, plan_resize
from repro.engine.cluster import LocalCluster
from repro.streaming.state import ShardedStateStore


@pytest.fixture()
def cluster():
    with LocalCluster(EngineConf(num_workers=3)) as c:
        yield c


def _executor(cluster):
    return MigrationExecutor(
        cluster.transport,
        cluster.metrics,
        tracer=cluster.tracer,
        clock=cluster.clock,
        on_worker_lost=cluster.driver.on_worker_lost,
    )


def _store_with(keys):
    store = ShardedStateStore("s")
    for i, key in enumerate(keys):
        store.put(key, i)
    return store


class TestMoveProtocol:
    def test_happy_path_ships_and_releases(self, cluster):
        store = _store_with([f"k{i}" for i in range(20)])
        m = ShardMap.initial(["worker-0", "worker-1"], 2)
        target, moves = plan_resize(m, ["worker-0", "worker-1", "worker-2"])
        outcome = _executor(cluster).execute(store, target.epoch, moves)
        assert outcome.all_ok and outcome.aborts == 0
        # Destination now hosts exactly the keys hashing into its ranges.
        w2 = cluster.workers["worker-2"]
        held = dict(w2.state_shard_items("s"))
        expected = {
            k: v for k, v in store.items() if target.owner_of(k) == "worker-2"
        }
        assert held == expected
        # Moved ranges are synced: their keys left the dirty set.
        for key in expected:
            delta = store.delta_for_range(target.range_of(key))
            assert key not in delta["updates"]
        # Sources released their copies of the moved ranges.
        for mv in moves:
            if mv.src is None:
                continue
            src_items = dict(cluster.workers[mv.src].state_shard_items("s"))
            assert not any(mv.range.contains_key(k) for k in src_items)

    def test_worker_held_base_is_load_bearing(self, cluster):
        """A source's installed base must reach the destination even for
        keys the driver no longer tracks as dirty — the wire genuinely
        carries worker-held state."""
        store = ShardedStateStore("s")
        m = ShardMap.initial(["worker-0", "worker-1"], 1)
        # Seed worker-0 with base contents via the normal install path,
        # with nothing dirty driver-side.
        r0 = m.ranges_for("worker-0")[0]
        base_keys = [f"k{i}" for i in range(40) if r0.contains_key(f"k{i}")][:5]
        assert base_keys, "need at least one key hashing into worker-0's range"
        payload = {k: f"base-{k}" for k in base_keys}
        cluster.workers["worker-0"].install_state_shards(
            "s", m.epoch, [(r0.as_tuple(), payload)]
        )
        target, moves = plan_resize(m, ["worker-1"])
        outcome = _executor(cluster).execute(store, target.epoch, moves)
        assert outcome.all_ok
        held = dict(cluster.workers["worker-1"].state_shard_items("s"))
        for k in base_keys:
            assert held[k] == f"base-{k}"

    def test_install_is_idempotent_and_epoch_gated(self, cluster):
        w = cluster.workers["worker-0"]
        full = (0, HASH_SPACE)
        assert w.install_state_shards("s", 3, [(full, {"a": 1, "b": 2})])
        # Duplicate delivery at the same epoch: harmless overwrite.
        assert w.install_state_shards("s", 3, [(full, {"a": 1, "b": 2})])
        assert dict(w.state_shard_items("s")) == {"a": 1, "b": 2}
        # A straggler from a superseded epoch is refused outright.
        assert not w.install_state_shards("s", 2, [(full, {"stale": 9})])
        assert dict(w.state_shard_items("s")) == {"a": 1, "b": 2}
        # Newer epochs supersede.
        assert w.install_state_shards("s", 4, [(full, {"c": 3})])
        assert dict(w.state_shard_items("s")) == {"c": 3}

    def test_dead_destination_aborts_and_source_retains(self, cluster):
        store = _store_with([f"k{i}" for i in range(20)])
        m = ShardMap.initial(["worker-0", "worker-1"], 2)
        # Give worker-1 a base so retention is observable.
        for r in m.ranges_for("worker-1"):
            cluster.workers["worker-1"].install_state_shards(
                "s", m.epoch, [(r.as_tuple(), store.extract_range(r))]
            )
        before = dict(cluster.workers["worker-1"].state_shard_items("s"))
        dirty_before = {
            k for r in m.ranges_for("worker-1")
            for k in store.delta_for_range(r)["updates"]
        }
        target, moves = plan_resize(m, ["worker-0", "worker-1", "worker-2"])
        cluster.kill_worker("worker-2", notify_driver=False)
        outcome = _executor(cluster).execute(store, target.epoch, moves)
        assert not outcome.all_ok
        assert outcome.failed and outcome.aborts >= len(outcome.failed)
        assert cluster.metrics.counters_snapshot()[COUNT_MIGRATION_ABORTS] >= 1
        # The source kept every shard (no release without an ack) and the
        # driver's dirty window stayed open for the failed ranges.
        assert dict(cluster.workers["worker-1"].state_shard_items("s")) == before
        dirty_after = {
            k for r in m.ranges_for("worker-1")
            for k in store.delta_for_range(r)["updates"]
        }
        assert dirty_after == dirty_before

    def test_dead_source_falls_back_to_driver_mirror(self, cluster):
        store = _store_with([f"k{i}" for i in range(20)])
        m = ShardMap.initial(["worker-0", "worker-1"], 2)
        target, moves = plan_resize(m, ["worker-0", "worker-1", "worker-2"])
        srcs = {mv.src for mv in moves} - {None}
        victim = sorted(srcs)[0]
        cluster.kill_worker(victim, notify_driver=False)
        outcome = _executor(cluster).execute(store, target.epoch, moves)
        # Every move still lands: the mirror serves the payload.
        assert outcome.all_ok
        assert outcome.aborts >= 1  # the extract abort was recorded
        held = dict(cluster.workers["worker-2"].state_shard_items("s"))
        expected = {
            k: v for k, v in store.items() if target.owner_of(k) == "worker-2"
        }
        assert held == expected


class TestRefineWithOutcomes:
    def test_failed_pieces_keep_old_owner(self):
        old = ShardMap.initial(["w0", "w1"], 2)
        target, moves = plan_resize(old, ["w0", "w1", "w2"])
        refined = refine_with_outcomes(old, target, moves)  # everything failed
        refined.validate()
        assert refined.epoch == target.epoch
        # All failed pieces stayed with their old owners: w2 owns nothing.
        assert "w2" not in refined.load()
        # Nothing failed: refinement reproduces the target ownership.
        refined_ok = refine_with_outcomes(old, target, [])
        for key in [f"k{i}" for i in range(30)]:
            assert refined_ok.owner_of(key) == target.owner_of(key)


class TestMidMigrationKill:
    def test_kill_racing_scale_in_aborts_then_requeues(self):
        """The elastic chaos profile's signature race: scale-in drains a
        worker, and a *destination* of its shards dies between extract and
        install.  The move aborts (source retains), the controller
        requeues against refreshed membership — the dead machine's own
        ranges come back from the driver mirror — and the final layout
        holds every key exactly once."""
        plan = FaultPlan(
            [FaultEvent(0, SITE_ELASTIC_RESIZE, KIND_WORKER_KILL, 1)],
            seed=0,
            profile="elastic",
        )
        with LocalCluster(EngineConf(num_workers=3)) as cluster:
            injector = ChaosInjector(
                plan, metrics=cluster.metrics, tracer=cluster.tracer, kill_budget=1
            )
            install(injector)
            try:
                controller = ElasticController(
                    cluster, policy=ScheduleScalingPolicy({0: -1})
                )
                store = ShardedStateStore("s")
                for i in range(30):
                    store.put(f"k{i}", i)
                controller.register_store(store)
                controller.at_group_boundary([])
            finally:
                uninstall(injector)
            assert injector.injected_count == 1
            snap = cluster.metrics.counters_snapshot()
            assert snap[COUNT_MIGRATION_ABORTS] >= 1
            assert snap.get(COUNT_MIGRATION_RETRIES, 0) >= 1
            assert snap[COUNT_MIGRATION_SHARDS_MOVED] >= 1
            # The final map never references the dead machine and still
            # tiles the whole space (validate() enforces it).
            final = controller.shard_map("s")
            final.validate()
            dead = {w for w, obj in cluster.workers.items() if obj.is_dead}
            assert dead, "the chaos kill must have fired"
            assert not (set(final.workers()) & dead)
            # No key lost, none duplicated: worker-side union of shards ==
            # the authoritative store contents for all synced ranges.
            held = {}
            for worker_id, worker in cluster.workers.items():
                if worker.is_dead:
                    continue
                for k, v in worker.state_shard_items("s"):
                    assert k not in held, f"key {k} hosted twice"
                    held[k] = v
            authoritative = dict(store.items())
            for k, v in held.items():
                assert authoritative[k] == v
