"""Tests for the block store and the in-process transport."""

import pytest

from repro.common.errors import FetchFailed, WorkerLost
from repro.common.metrics import COUNT_RPC_MESSAGES, MetricsRegistry
from repro.engine.blocks import BlockStore
from repro.engine.rpc import Transport


class TestBlockStore:
    def test_put_get(self):
        store = BlockStore("w0")
        store.put_map_output(1, 0, 2, {0: ["a"], 1: ["b", "c"]})
        assert store.get_bucket(1, 0, 2, 1) == ["b", "c"]
        assert store.get_bucket(1, 0, 2, 0) == ["a"]

    def test_missing_reduce_bucket_is_empty(self):
        store = BlockStore("w0")
        store.put_map_output(1, 0, 0, {0: ["a"]})
        assert store.get_bucket(1, 0, 0, 5) == []

    def test_missing_block_raises_fetch_failed(self):
        store = BlockStore("w0")
        with pytest.raises(FetchFailed) as e:
            store.get_bucket(9, 8, 7, 0)
        assert e.value.shuffle_id == 8
        assert e.value.map_index == 7
        assert e.value.worker_id == "w0"

    def test_has_map_output(self):
        store = BlockStore("w0")
        assert not store.has_map_output(1, 0, 0)
        store.put_map_output(1, 0, 0, {})
        assert store.has_map_output(1, 0, 0)

    def test_bucket_sizes(self):
        store = BlockStore("w0")
        assert store.bucket_sizes(1, 0, 0) is None
        store.put_map_output(1, 0, 0, {0: ["a"], 1: []})
        assert store.bucket_sizes(1, 0, 0) == {0: 1, 1: 0}

    def test_drop_job_scoped(self):
        store = BlockStore("w0")
        store.put_map_output(1, 0, 0, {})
        store.put_map_output(2, 0, 0, {})
        assert store.drop_job(1) == 1
        assert not store.has_map_output(1, 0, 0)
        assert store.has_map_output(2, 0, 0)

    def test_clear_and_len(self):
        store = BlockStore("w0")
        store.put_map_output(1, 0, 0, {})
        assert len(store) == 1
        store.clear()
        assert len(store) == 0


class _Echo:
    def __init__(self):
        self.calls = []

    def ping(self, x):
        self.calls.append(x)
        return x * 2


class TestTransport:
    def test_call_routes_and_counts(self):
        metrics = MetricsRegistry()
        t = Transport(metrics)
        echo = _Echo()
        t.register("w0", echo)
        assert t.call("w0", "ping", 21) == 42
        assert metrics.counter(COUNT_RPC_MESSAGES).value == 1
        assert echo.calls == [21]

    def test_unknown_endpoint(self):
        t = Transport()
        with pytest.raises(WorkerLost):
            t.call("ghost", "ping", 1)

    def test_dead_endpoint_refuses_traffic(self):
        t = Transport()
        t.register("w0", _Echo())
        t.mark_dead("w0")
        assert not t.is_alive("w0")
        with pytest.raises(WorkerLost):
            t.call("w0", "ping", 1)

    def test_try_call_swallows_worker_lost(self):
        t = Transport()
        t.register("w0", _Echo())
        t.mark_dead("w0")
        assert t.try_call("w0", "ping", 1) is False
        t2 = Transport()
        echo = _Echo()
        t2.register("w0", echo)
        assert t2.try_call("w0", "ping", 1) is True
        assert echo.calls == [1]

    def test_reregister_revives(self):
        t = Transport()
        t.register("w0", _Echo())
        t.mark_dead("w0")
        t.register("w0", _Echo())
        assert t.is_alive("w0")

    def test_endpoints_snapshot(self):
        t = Transport()
        e = _Echo()
        t.register("a", e)
        assert t.endpoints() == {"a": e}
