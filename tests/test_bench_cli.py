"""Tests for the `python -m repro.bench` report generator CLI."""

import pathlib

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig4a", "fig7", "table2", "ablation-treereduce"):
            assert name in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--only", "fig99"])

    def test_only_runs_subset(self, capsys):
        assert main(["--only", "ablation-treereduce"]) == 0
        out = capsys.readouterr().out
        assert "tree-reduce-aware" in out
        assert "Fig 6a" not in out

    def test_markdown_output(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["--only", "ablation-treereduce", "--markdown", str(target)]) == 0
        text = target.read_text()
        assert text.startswith("# Reproduced experiments")
        assert "tree-reduce-aware" in text

    def test_every_experiment_registered_once(self):
        names = [name for name, _fn in EXPERIMENTS]
        assert len(names) == len(set(names))
        # One entry per reproduced table/figure + the four ablation/tuning
        # studies.
        for required in (
            "table2", "fig4a", "fig4b", "fig5a", "fig5b", "fig6a", "fig6b",
            "fig7", "fig8a", "fig8b", "fig9", "tuning",
        ):
            assert required in names


class TestErrorTypes:
    def test_fetch_failed_attributes(self):
        from repro.common.errors import FetchFailed, RecoverableError

        err = FetchFailed(3, 7, "worker-1")
        assert err.shuffle_id == 3
        assert err.map_index == 7
        assert err.worker_id == "worker-1"
        assert isinstance(err, RecoverableError)

    def test_worker_lost_attributes(self):
        from repro.common.errors import RecoverableError, WorkerLost

        err = WorkerLost("worker-9", "heartbeat timeout")
        assert err.worker_id == "worker-9"
        assert "heartbeat timeout" in str(err)
        assert isinstance(err, RecoverableError)

    def test_task_error_wraps_cause(self):
        from repro.common.errors import ReproError, TaskError

        cause = ValueError("boom")
        err = TaskError("j0.s0.p0", cause)
        assert err.cause is cause
        assert err.task_id == "j0.s0.p0"
        assert isinstance(err, ReproError)

    def test_hierarchy(self):
        from repro.common import errors

        for name in (
            "ConfigError", "PlanError", "RecoverableError", "CheckpointError",
            "SimulationError", "StreamingError", "TaskError",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError)
