"""Driver crash-restart recovery (repro.ha): WAL replay → resumed stream.

The acceptance property from the paper's §3.3 fault-tolerance argument,
extended to the *control plane*: a driver killed at any journaled
transition point recovers from its WAL to results byte-identical to an
uninterrupted run, with zero duplicated sink emissions — and a crash-free
run with HA enabled costs ±0 engine messages versus HA disabled.
"""

import pytest

from repro.common.config import EngineConf, HaConf, TransportConf
from repro.common.metrics import COUNT_RPC_MESSAGES
from repro.engine.cluster import LocalCluster
from repro.streaming import EpochFencedSink, FixedBatchSource, StreamingContext

BATCHES = [
    ["a b a", "c a"],
    ["b b", "a c"],
    ["c c c", "a"],
    ["b a", "c b"],
    ["a a", "b c"],
    ["c", "a b"],
]


def _build(cluster, sink):
    ctx = StreamingContext(
        cluster, FixedBatchSource(BATCHES, 2), batch_interval_s=0.01
    )
    counts = ctx.state_store("counts")
    stream = (
        ctx.stream()
        .flat_map(lambda line: line.split())
        .map(lambda w: (w, 1))
        .reduce_by_key(lambda a, b: a + b)
    )

    def deliver(batch_id, records):
        counts.update_many(dict(records), lambda a, b: a + b)
        sink.commit(batch_id, sorted(records), epoch=cluster.driver.session_epoch)

    ctx.register_output(stream, deliver)
    return ctx, counts


def _baseline():
    sink = EpochFencedSink()
    with LocalCluster(EngineConf(num_workers=2)) as cluster:
        ctx, counts = _build(cluster, sink)
        ctx.run_batches(len(BATCHES))
        return sorted(counts.items()), sink.all_records()


class TestCrashRestartRecovery:
    @pytest.mark.parametrize("crash_after", [1, 3, 5])
    def test_recovers_to_byte_identical_results(self, tmp_path, crash_after):
        expected_state, _ = _baseline()
        wal_dir = str(tmp_path / "wal")
        conf = EngineConf(
            num_workers=2,
            ha=HaConf(enabled=True, wal_dir=wal_dir, snapshot_every_n_groups=2),
        )
        sink = EpochFencedSink()
        with LocalCluster(conf) as first:
            ctx1, _ = _build(first, sink)
            ctx1.run_batches(crash_after)
            if crash_after >= 3:
                ctx1.checkpoint()
        # "Crash": the first incarnation is gone; only the WAL survives.
        second = LocalCluster.recover(wal_dir, EngineConf(num_workers=2))
        try:
            assert second.driver.session_epoch == 2  # fenced restart
            recovered = second.recovered_state
            assert recovered.session_epoch == 1
            assert set(recovered.committed_batches) == set(range(crash_after))
            sink.adopt_epoch(second.driver.session_epoch)
            sink.restore_ledger(sorted(recovered.committed_batches))
            ctx2, counts = _build(second, sink)
            resume_at = ctx2.restore_from_recovery(recovered)
            assert resume_at <= crash_after
            ctx2.run_batches(len(BATCHES) - resume_at)
            assert sorted(counts.items()) == expected_state
            # Zero double-emissions: every batch committed exactly once
            # for real; recommits of already-delivered batches were no-ops.
            assert sink.committed_batches() == list(range(len(BATCHES)))
            assert sink.fenced_commits == 0
        finally:
            second.shutdown()

    def test_recovery_without_checkpoint_replays_from_zero(self, tmp_path):
        expected_state, _ = _baseline()
        wal_dir = str(tmp_path / "wal")
        conf = EngineConf(num_workers=2, ha=HaConf(enabled=True, wal_dir=wal_dir))
        sink = EpochFencedSink()
        with LocalCluster(conf) as first:
            ctx1, _ = _build(first, sink)
            ctx1.run_batches(2)  # no checkpoint taken before the crash
        second = LocalCluster.recover(wal_dir, EngineConf(num_workers=2))
        try:
            sink.adopt_epoch(second.driver.session_epoch)
            sink.restore_ledger(sorted(second.recovered_state.committed_batches))
            ctx2, counts = _build(second, sink)
            assert ctx2.restore_from_recovery(second.recovered_state) == 0
            ctx2.run_batches(len(BATCHES))
            assert sorted(counts.items()) == expected_state
            # Batches 0-1 were already emitted by the first incarnation:
            # their recommits deduplicated instead of double-emitting.
            assert sink.duplicate_commits == 2
        finally:
            second.shutdown()

    def test_journal_records_membership_and_jobs(self, tmp_path):
        from repro.ha.journal import ControlJournal

        wal_dir = str(tmp_path / "wal")
        conf = EngineConf(num_workers=3, ha=HaConf(enabled=True, wal_dir=wal_dir))
        with LocalCluster(conf) as cluster:
            sink = EpochFencedSink()
            ctx, _ = _build(cluster, sink)
            ctx.run_batches(2)
            cluster.decommission_worker("worker-2")
            ctx.run_batches(1)
        state = ControlJournal.recover(wal_dir)
        assert state.workers == ["worker-0", "worker-1"]
        assert state.jobs["submitted"] > 0
        assert state.jobs["open"] == []  # all committed groups retired them

    def test_recovered_cluster_keeps_journaling(self, tmp_path):
        """Recovery is not a one-shot: the restarted driver journals too,
        so a second crash recovers from the second incarnation's state."""
        wal_dir = str(tmp_path / "wal")
        conf = EngineConf(num_workers=2, ha=HaConf(enabled=True, wal_dir=wal_dir))
        sink = EpochFencedSink()
        with LocalCluster(conf) as first:
            ctx1, _ = _build(first, sink)
            ctx1.run_batches(2)
        second = LocalCluster.recover(wal_dir, EngineConf(num_workers=2))
        try:
            sink.adopt_epoch(second.driver.session_epoch)
            sink.restore_ledger(sorted(second.recovered_state.committed_batches))
            ctx2, _ = _build(second, sink)
            ctx2.restore_from_recovery(second.recovered_state)
            ctx2.run_batches(4 - ctx2.next_batch)
            ctx2.checkpoint()
        finally:
            second.shutdown()
        third = LocalCluster.recover(wal_dir, EngineConf(num_workers=2))
        try:
            assert third.driver.session_epoch == 3
            assert set(third.recovered_state.committed_batches) == set(range(4))
            assert third.recovered_state.next_batch == 4
        finally:
            third.shutdown()


class TestMessageParity:
    @pytest.mark.parametrize("backend", ["inproc", "tcp"])
    def test_crash_free_ha_run_costs_zero_extra_messages(self, tmp_path, backend):
        def run(ha_conf):
            conf = EngineConf(
                num_workers=2,
                transport=TransportConf(backend=backend),
                ha=ha_conf,
            )
            sink = EpochFencedSink()
            with LocalCluster(conf) as cluster:
                ctx, counts = _build(cluster, sink)
                ctx.run_batches(4)
                return (
                    sorted(counts.items()),
                    cluster.metrics.counter(COUNT_RPC_MESSAGES).value,
                )

        state_off, messages_off = run(HaConf(enabled=False))
        state_on, messages_on = run(
            HaConf(enabled=True, wal_dir=str(tmp_path / "wal"))
        )
        assert state_on == state_off
        assert messages_on == messages_off  # ±0: journaling is off-path
