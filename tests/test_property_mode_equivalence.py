"""Property-based test: for RANDOM DAGs of operators, every scheduling
mode produces identical results.

This is the central soundness claim of the paper's design: group
scheduling and pre-scheduling are pure control-plane transformations.
Hypothesis builds arbitrary chains of narrow and wide operators over
arbitrary inputs and runs them under per-batch barrier scheduling and
under Drizzle; the outputs must match exactly.
"""

from typing import List

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import EngineConf, ExecutorConf, SchedulingMode, TransportConf
from repro.common.metrics import (
    COUNT_LAUNCH_RPCS,
    COUNT_RPC_MESSAGES,
    COUNT_TASKS_LAUNCHED,
)
from repro.dag.dataset import Dataset, parallelize
from repro.dag.plan import collect_action, compile_plan
from repro.engine.cluster import LocalCluster

# --- operator vocabulary (deterministic, hashable-output) --------------

def _op_map(ds: Dataset) -> Dataset:
    return ds.map(lambda x: (x[0], x[1] + 1) if isinstance(x, tuple) else x * 2 + 1)


def _op_filter(ds: Dataset) -> Dataset:
    return ds.filter(
        lambda x: (hash(x[0]) if isinstance(x, tuple) else x) % 3 != 0
    )


def _op_flat_map(ds: Dataset) -> Dataset:
    return ds.flat_map(lambda x: [x] if isinstance(x, tuple) else [x, -x])


def _op_key_reduce(ds: Dataset) -> Dataset:
    keyed = ds.map(lambda x: x if isinstance(x, tuple) else (x % 5, x))
    return keyed.reduce_by_key(lambda a, b: a + b, 3)


def _op_key_group(ds: Dataset) -> Dataset:
    keyed = ds.map(lambda x: x if isinstance(x, tuple) else (x % 4, x))
    return keyed.group_by_key(2).map(lambda kv: (kv[0], sum(kv[1])))


def _op_distinct(ds: Dataset) -> Dataset:
    flat = ds.map(lambda x: x[1] if isinstance(x, tuple) else x)
    return flat.distinct(2)


OPS = [_op_map, _op_filter, _op_flat_map, _op_key_reduce, _op_key_group, _op_distinct]


def build_dag(data: List[int], num_partitions: int, op_indices: List[int]) -> Dataset:
    ds: Dataset = parallelize(data, num_partitions)
    for i in op_indices:
        ds = OPS[i](ds)
    return ds


def canonical(result) -> List:
    return sorted(result, key=repr)


# Every executor backend must preserve the equivalence: the backend is a
# data-plane choice, the SchedulingMode a control-plane one, and neither
# may change results.  The process backend gets fewer examples — each one
# pays for real child-process pools.
BACKENDS = ["inline", "thread", "process"]


@pytest.mark.parametrize("backend", BACKENDS)
@settings(deadline=None, max_examples=25)
@given(
    data=st.lists(st.integers(-100, 100), min_size=0, max_size=40),
    num_partitions=st.integers(1, 5),
    op_indices=st.lists(st.integers(0, len(OPS) - 1), min_size=0, max_size=5),
    group_size=st.integers(1, 4),
)
def test_random_dag_mode_equivalence(backend, data, num_partitions, op_indices, group_size):
    dag_data = data if data else [0]
    plan_factory = lambda: compile_plan(
        build_dag(dag_data, num_partitions, op_indices), collect_action()
    )

    with LocalCluster(
        EngineConf(num_workers=2, slots_per_worker=2,
                   scheduling_mode=SchedulingMode.PER_BATCH,
                   executor=ExecutorConf(backend=backend))
    ) as cluster:
        barrier_result = canonical(cluster.run_plan(plan_factory()))

    with LocalCluster(
        EngineConf(num_workers=3, slots_per_worker=1,
                   scheduling_mode=SchedulingMode.DRIZZLE, group_size=group_size,
                   executor=ExecutorConf(backend=backend))
    ) as cluster:
        drizzle_result = canonical(cluster.run_plan(plan_factory()))

    assert barrier_result == drizzle_result


@pytest.mark.parametrize(
    "mode",
    [SchedulingMode.PER_BATCH, SchedulingMode.DRIZZLE, SchedulingMode.PRE_SCHEDULED],
)
@settings(deadline=None, max_examples=8)
@given(
    data=st.lists(st.integers(-50, 50), min_size=0, max_size=25),
    num_partitions=st.integers(1, 4),
    op_indices=st.lists(st.integers(0, len(OPS) - 1), min_size=0, max_size=4),
)
def test_random_dag_transport_equivalence(mode, data, num_partitions, op_indices):
    """The transport backend is pure plumbing: for any random DAG and any
    scheduling mode, running over real sockets produces the identical
    result AND the identical driver-side message counts (±0) as the
    in-process transport — the coordination *pattern* is transport-
    independent even though its *cost* is not."""
    dag_data = data if data else [0]
    plan_factory = lambda: compile_plan(
        build_dag(dag_data, num_partitions, op_indices), collect_action()
    )

    def run(transport: str):
        with LocalCluster(
            EngineConf(num_workers=2, slots_per_worker=2, scheduling_mode=mode,
                       transport=TransportConf(backend=transport))
        ) as cluster:
            result = canonical(cluster.run_plan(plan_factory()))
            counts = {
                name: cluster.metrics.counter(name).value
                for name in (COUNT_RPC_MESSAGES, COUNT_LAUNCH_RPCS,
                             COUNT_TASKS_LAUNCHED)
            }
        return result, counts

    inproc_result, inproc_counts = run("inproc")
    tcp_result, tcp_counts = run("tcp")
    assert inproc_result == tcp_result
    assert inproc_counts == tcp_counts


@settings(deadline=None, max_examples=15)
@given(
    data=st.lists(st.integers(-50, 50), min_size=1, max_size=30),
    op_indices=st.lists(st.integers(0, len(OPS) - 1), min_size=1, max_size=4),
)
def test_random_dag_combine_invariance(data, op_indices):
    """Map-side combining on/off never changes any random DAG's result."""
    dag = lambda: build_dag(data, 3, op_indices)
    with LocalCluster(
        EngineConf(num_workers=2, scheduling_mode=SchedulingMode.DRIZZLE,
                   map_side_combine=True)
    ) as cluster:
        with_combine = canonical(
            cluster.run_plan(compile_plan(dag(), collect_action(),
                                          map_side_combine=True))
        )
    with LocalCluster(
        EngineConf(num_workers=2, scheduling_mode=SchedulingMode.DRIZZLE,
                   map_side_combine=False)
    ) as cluster:
        without = canonical(
            cluster.run_plan(compile_plan(dag(), collect_action(),
                                          map_side_combine=False))
        )
    assert with_combine == without
