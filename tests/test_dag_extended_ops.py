"""Tests for the extended Dataset operators and distributed sort."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import EngineConf, SchedulingMode
from repro.common.errors import PlanError
from repro.dag.dataset import parallelize
from repro.engine.cluster import LocalCluster

from engine_test_utils import make_cluster


@pytest.fixture(scope="module")
def cluster():
    conf = EngineConf(
        num_workers=3, slots_per_worker=2, scheduling_mode=SchedulingMode.DRIZZLE
    )
    with LocalCluster(conf) as c:
        yield c


class TestExtendedOps:
    def test_keys_values(self, cluster):
        ds = parallelize([("a", 1), ("b", 2)], 2)
        assert sorted(cluster.collect(ds.keys())) == ["a", "b"]
        assert sorted(cluster.collect(ds.values())) == [1, 2]

    def test_distinct(self, cluster):
        ds = parallelize([1, 2, 2, 3, 3, 3, 1], 3)
        assert sorted(cluster.collect(ds.distinct(2))) == [1, 2, 3]

    def test_distinct_empty(self, cluster):
        ds = parallelize([0], 1).filter(lambda x: False)
        assert cluster.collect(ds.distinct(2)) == []

    def test_count_by_key(self, cluster):
        ds = parallelize([("a", "x"), ("b", "y"), ("a", "z")], 2)
        assert dict(cluster.collect(ds.count_by_key(2))) == {"a": 2, "b": 1}

    def test_sample_deterministic(self, cluster):
        ds = parallelize(range(1000), 4)
        a = sorted(cluster.collect(ds.sample(0.3, seed=7)))
        b = sorted(cluster.collect(ds.sample(0.3, seed=7)))
        assert a == b
        assert 200 < len(a) < 400

    def test_sample_bounds(self, cluster):
        ds = parallelize(range(100), 2)
        assert cluster.collect(ds.sample(0.0)) == []
        assert sorted(cluster.collect(ds.sample(1.0))) == list(range(100))
        with pytest.raises(PlanError):
            ds.sample(1.5)

    def test_top(self, cluster):
        ds = parallelize([5, 1, 9, 3, 7, 2, 8], 3)
        assert cluster.collect(ds.top(3)) == [9, 8, 7]

    def test_top_with_key(self, cluster):
        ds = parallelize([("a", 3), ("b", 9), ("c", 1)], 2)
        out = cluster.collect(ds.top(2, key=lambda kv: kv[1]))
        assert out == [("b", 9), ("a", 3)]

    def test_top_fewer_than_n(self, cluster):
        ds = parallelize([4, 2], 2)
        assert cluster.collect(ds.top(10)) == [4, 2]

    def test_top_rejects_zero(self, cluster):
        with pytest.raises(PlanError):
            parallelize([1], 1).top(0)

    @settings(deadline=None, max_examples=15)
    @given(st.lists(st.integers(-50, 50), min_size=0, max_size=60))
    def test_distinct_property(self, data):
        with make_cluster(SchedulingMode.DRIZZLE, workers=2) as c:
            ds = parallelize(data, 3) if data else parallelize([0], 1).filter(
                lambda x: False
            )
            assert sorted(c.collect(ds.distinct(2))) == sorted(set(data))


class TestDistributedSort:
    def test_sort_integers(self, cluster):
        import random

        rng = random.Random(3)
        data = [rng.randrange(10_000) for _ in range(500)]
        out = cluster.sort(parallelize(data, 6), num_partitions=4)
        assert out == sorted(data)

    def test_sort_with_key(self, cluster):
        data = [("x", 3), ("y", 1), ("z", 2)]
        out = cluster.sort(parallelize(data, 2), key=lambda kv: kv[1])
        assert out == [("y", 1), ("z", 2), ("x", 3)]

    def test_sort_empty(self, cluster):
        ds = parallelize([0], 1).filter(lambda x: False)
        assert cluster.sort(ds) == []

    def test_sort_with_duplicates(self, cluster):
        data = [5, 5, 5, 1, 1, 9] * 20
        out = cluster.sort(parallelize(data, 4), num_partitions=3)
        assert out == sorted(data)

    @settings(deadline=None, max_examples=10)
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=80))
    def test_sort_property(self, data):
        with make_cluster(SchedulingMode.DRIZZLE, workers=2) as c:
            assert c.sort(parallelize(data, 3), num_partitions=3) == sorted(data)
