"""Tests for the adaptive streaming features: sliding windows, cross-batch
re-optimization (§3.5), and elastic scaling policies (§3.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import EngineConf, SchedulingMode
from repro.common.errors import StreamingError
from repro.engine.cluster import LocalCluster
from repro.streaming.context import BatchStats, StreamingContext
from repro.streaming.elasticity import (
    ElasticityController,
    UtilizationScalingPolicy,
)
from repro.streaming.reoptimizer import (
    ReducerCountOptimizer,
    adaptive_reduce_by_key,
    attach_adaptive_output,
)
from repro.streaming.sinks import IdempotentSink
from repro.streaming.sliding import SlidingWindowAggregator, attach_sliding_window
from repro.streaming.sources import FixedBatchSource
from repro.streaming.state import StateStore


def make_fixed_ctx(batches, group_size=2, workers=2):
    conf = EngineConf(
        num_workers=workers,
        slots_per_worker=2,
        scheduling_mode=SchedulingMode.DRIZZLE,
        group_size=group_size,
    )
    cluster = LocalCluster(conf)
    ctx = StreamingContext(cluster, FixedBatchSource(batches, 4), 0.05)
    return cluster, ctx


class TestSlidingWindowAggregator:
    def test_window_of_one_is_identity(self):
        agg = SlidingWindowAggregator(StateStore("w"), 1, 1, lambda a, b: a + b)
        assert agg.on_batch(0, [("k", 2)]) == [("k", 2)]
        assert agg.on_batch(1, [("k", 5)]) == [("k", 5)]

    def test_window_merges_last_n_batches(self):
        agg = SlidingWindowAggregator(StateStore("w"), 3, 1, lambda a, b: a + b)
        agg.on_batch(0, [("k", 1)])
        agg.on_batch(1, [("k", 2)])
        assert agg.on_batch(2, [("k", 4)]) == [("k", 7)]
        # Batch 0 falls out of the window at batch 3.
        assert agg.on_batch(3, [("k", 8)]) == [("k", 14)]

    def test_slide_gates_emission(self):
        agg = SlidingWindowAggregator(StateStore("w"), 4, 2, lambda a, b: a + b)
        assert agg.on_batch(0, [("k", 1)]) is None
        assert agg.on_batch(1, [("k", 1)]) == [("k", 2)]
        assert agg.on_batch(2, [("k", 1)]) is None
        assert agg.on_batch(3, [("k", 1)]) == [("k", 4)]

    def test_replayed_batch_replaces_not_doubles(self):
        store = StateStore("w")
        agg = SlidingWindowAggregator(store, 3, 1, lambda a, b: a + b)
        agg.on_batch(0, [("k", 1)])
        agg.on_batch(1, [("k", 2)])
        # Replay of batch 1 (after recovery) must not double-count.
        assert agg.on_batch(1, [("k", 2)]) == [("k", 3)]

    def test_multiple_keys(self):
        agg = SlidingWindowAggregator(StateStore("w"), 2, 1, lambda a, b: a + b)
        agg.on_batch(0, [("a", 1), ("b", 10)])
        out = agg.on_batch(1, [("a", 2)])
        assert out == [("a", 3), ("b", 10)]

    def test_validation(self):
        store = StateStore("w")
        with pytest.raises(StreamingError):
            SlidingWindowAggregator(store, 0, 1, lambda a, b: a)
        with pytest.raises(StreamingError):
            SlidingWindowAggregator(store, 2, 3, lambda a, b: a)
        with pytest.raises(StreamingError):
            SlidingWindowAggregator(store, 2, 0, lambda a, b: a)

    @settings(deadline=None, max_examples=30)
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=20),
           st.integers(1, 5))
    def test_window_sum_matches_direct(self, values, window):
        """Sliding sum over any input equals the direct computation."""
        agg = SlidingWindowAggregator(StateStore("w"), window, 1, lambda a, b: a + b)
        for b, v in enumerate(values):
            out = dict(agg.on_batch(b, [("k", v)]) or [])
            expected = sum(values[max(0, b - window + 1) : b + 1])
            assert out.get("k", 0) == expected


class TestSlidingWindowOnEngine:
    def test_end_to_end(self):
        batches = [[("k", 1)] * (b + 1) for b in range(6)]  # batch b has b+1 records
        cluster, ctx = make_fixed_ctx(
            [[w for w in batch] for batch in batches], group_size=3
        )
        with cluster:
            sink = IdempotentSink()
            store = ctx.state_store("sliding")
            keyed = ctx.stream().reduce_by_key(lambda a, b: a + b, 2)
            attach_sliding_window(
                keyed, store, window=3, slide=1, merge=lambda a, b: a + b, sink=sink
            )
            ctx.run_batches(6)
            # Window ending at batch 5 sums batches 3,4,5 = 4+5+6 = 15.
            assert dict(sink.records_for(5)) == {"k": 15}
            assert dict(sink.records_for(2)) == {"k": 1 + 2 + 3}


class TestReducerCountOptimizer:
    def test_scales_with_cardinality(self):
        opt = ReducerCountOptimizer(target_records_per_reducer=100,
                                    initial_reducers=4, max_reducers=32)
        for b in range(10):
            opt.observe(b, 1600)
        assert opt.current_reducers == 16

    def test_shrinks_when_small(self):
        opt = ReducerCountOptimizer(target_records_per_reducer=100,
                                    initial_reducers=16, max_reducers=32)
        for b in range(10):
            opt.observe(b, 50)
        assert opt.current_reducers == 1

    def test_bounds_respected(self):
        opt = ReducerCountOptimizer(target_records_per_reducer=10,
                                    min_reducers=2, max_reducers=8,
                                    initial_reducers=4)
        for b in range(10):
            opt.observe(b, 10_000)
        assert opt.current_reducers == 8
        for b in range(10, 40):
            opt.observe(b, 0)
        assert opt.current_reducers == 2

    def test_validation(self):
        with pytest.raises(StreamingError):
            ReducerCountOptimizer(target_records_per_reducer=0)
        with pytest.raises(StreamingError):
            ReducerCountOptimizer(min_reducers=10, initial_reducers=5)
        opt = ReducerCountOptimizer()
        with pytest.raises(StreamingError):
            opt.observe(0, -1)

    def test_history_recorded(self):
        opt = ReducerCountOptimizer()
        opt.observe(0, 100)
        opt.observe(1, 200)
        assert len(opt.history) == 2
        assert opt.history[0].batch_index == 0


class TestAdaptiveReduceOnEngine:
    def test_plan_parallelism_follows_optimizer(self):
        """Reducer count changes take effect at group boundaries: the
        first group plans with the initial parallelism; after observing
        high cardinality, the next group plans with more reducers —
        results stay identical."""
        num_batches = 4
        batches = [[(f"k{i}", 1) for i in range(400)] for _b in range(num_batches)]
        cluster, ctx = make_fixed_ctx(batches, group_size=2)
        with cluster:
            opt = ReducerCountOptimizer(
                target_records_per_reducer=100, initial_reducers=1, max_reducers=8
            )
            adapted = adaptive_reduce_by_key(
                ctx.stream(), lambda a, b: a + b, optimizer=opt
            )
            outputs = {}
            attach_adaptive_output(
                adapted, opt, lambda b, records: outputs.update({b: dict(records)})
            )
            ctx.run_batches(num_batches)
            assert opt.current_reducers == 4  # 400 keys / 100 target
            assert all(
                outputs[b] == {f"k{i}": 1 for i in range(400)}
                for b in range(num_batches)
            )
            # The later groups' reduce stages used the adapted parallelism:
            # verify via the observer history (first batches observed with
            # initial plan, later recommendation rose).
            assert opt.history[0].previous_reducers == 1
            assert opt.history[-1].new_reducers == 4


class TestUtilizationScalingPolicy:
    def _stats(self, wall, n=6, interval=0.1):
        return [
            BatchStats(batch_index=i, group_id=0, group_size=n,
                       wall_time_s=wall, completed_at=0.0)
            for i in range(n)
        ]

    def test_scale_up_when_hot(self):
        policy = UtilizationScalingPolicy(batch_interval_s=0.1)
        decision = policy.decide(self._stats(0.095), current_workers=4)
        assert decision.delta_workers == 1

    def test_scale_down_when_idle(self):
        policy = UtilizationScalingPolicy(batch_interval_s=0.1)
        decision = policy.decide(self._stats(0.01), current_workers=4)
        assert decision.delta_workers == -1

    def test_hold_in_band(self):
        policy = UtilizationScalingPolicy(batch_interval_s=0.1)
        decision = policy.decide(self._stats(0.05), current_workers=4)
        assert decision.delta_workers == 0

    def test_respects_min_max(self):
        policy = UtilizationScalingPolicy(batch_interval_s=0.1, min_workers=4,
                                          max_workers=4)
        assert policy.decide(self._stats(0.095), 4).delta_workers == 0
        assert policy.decide(self._stats(0.01), 4).delta_workers == 0

    def test_no_data_holds(self):
        policy = UtilizationScalingPolicy(batch_interval_s=0.1)
        assert policy.decide([], 4).delta_workers == 0

    def test_validation(self):
        with pytest.raises(StreamingError):
            UtilizationScalingPolicy(batch_interval_s=0)
        with pytest.raises(StreamingError):
            UtilizationScalingPolicy(batch_interval_s=0.1, scale_up_threshold=0.2,
                                     scale_down_threshold=0.5)
        with pytest.raises(StreamingError):
            UtilizationScalingPolicy(batch_interval_s=0.1, lookback_batches=0)


class TestElasticityOnEngine:
    def test_controller_adds_worker_at_group_boundary(self):
        batches = [[f"w{i}" for i in range(20)] for _b in range(6)]
        cluster, ctx = make_fixed_ctx(batches, group_size=2, workers=2)
        with cluster:
            # A policy that always wants one more machine.
            class AlwaysUp(UtilizationScalingPolicy):
                def decide(self, recent, current_workers):
                    from repro.streaming.elasticity import ScalingDecision

                    return ScalingDecision(+1, "test")

            controller = ElasticityController(
                cluster, AlwaysUp(batch_interval_s=0.05)
            )
            ctx.set_elasticity(controller)
            ctx.stream().foreach_batch(lambda b, r: None)
            before = len(cluster.alive_workers())
            ctx.run_batches(6)  # 3 group boundaries
            after = len(cluster.alive_workers())
            assert after == before + 3
            assert len(controller.decisions) == 3

    def test_scale_down_drains_gracefully(self):
        batches = [[f"w{i}" for i in range(4)] for _b in range(4)]
        cluster, ctx = make_fixed_ctx(batches, group_size=2, workers=3)
        with cluster:
            policy = UtilizationScalingPolicy(
                batch_interval_s=10.0, min_workers=1  # everything looks idle
            )
            controller = ElasticityController(cluster, policy)
            ctx.set_elasticity(controller)
            seen = []
            ctx.stream().foreach_batch(lambda b, r: seen.append(len(r)))
            ctx.run_batches(4)
            # Workers drained from placement but results stay correct.
            assert seen == [4, 4, 4, 4]
            assert len(cluster.driver.placement_workers()) < 3
