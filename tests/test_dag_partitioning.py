"""Tests for partitioners and the stable hash."""

import pytest
from hypothesis import given, strategies as st

from repro.dag.partitioning import HashPartitioner, RangePartitioner, _stable_hash

keys = st.one_of(
    st.integers(-(2**40), 2**40),
    st.text(max_size=30),
    st.binary(max_size=30),
    st.tuples(st.integers(0, 1000), st.text(max_size=8)),
)


class TestStableHash:
    def test_deterministic_for_strings(self):
        # Unlike built-in hash(str), must be stable across processes.
        assert _stable_hash("campaign-7") == 509687824

    def test_int_passthrough(self):
        assert _stable_hash(42) == 42

    def test_bytes_vs_str_consistent(self):
        assert _stable_hash("abc") == _stable_hash(b"abc")

    @given(keys)
    def test_repeatable(self, key):
        assert _stable_hash(key) == _stable_hash(key)


class TestHashPartitioner:
    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    @given(keys, st.integers(1, 64))
    def test_in_range(self, key, n):
        p = HashPartitioner(n).partition(key)
        assert 0 <= p < n

    @given(keys)
    def test_single_partition(self, key):
        assert HashPartitioner(1).partition(key) == 0

    def test_equality(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(8)
        assert hash(HashPartitioner(4)) == hash(HashPartitioner(4))

    def test_spreads_keys(self):
        partitioner = HashPartitioner(8)
        buckets = {partitioner.partition(f"key-{i}") for i in range(200)}
        assert len(buckets) == 8


class TestRangePartitioner:
    def test_boundaries(self):
        p = RangePartitioner([10, 20])
        assert p.num_partitions == 3
        assert p.partition(5) == 0
        assert p.partition(10) == 1
        assert p.partition(19) == 1
        assert p.partition(20) == 2
        assert p.partition(1000) == 2

    def test_empty_boundaries_single_partition(self):
        p = RangePartitioner([])
        assert p.num_partitions == 1
        assert p.partition(123) == 0

    def test_equality(self):
        assert RangePartitioner([1, 2]) == RangePartitioner([1, 2])
        assert RangePartitioner([1, 2]) != RangePartitioner([1, 3])
        assert RangePartitioner([1]) != HashPartitioner(2)

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=10, unique=True),
           st.integers(-200, 200))
    def test_ordering_property(self, boundaries, key):
        boundaries = sorted(boundaries)
        p = RangePartitioner(boundaries)
        idx = p.partition(key)
        # Keys below the first boundary land in 0; above the last in the
        # final partition; and partition index is monotone in the key.
        if idx > 0:
            assert key >= boundaries[idx - 1]
        if idx < len(boundaries):
            assert key < boundaries[idx]
