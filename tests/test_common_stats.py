"""Unit + property tests for repro.common.stats."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import (
    ExponentialAverage,
    Summary,
    Welford,
    cdf_points,
    mean,
    median,
    percentile,
    stddev,
)

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 0) == 5.0
        assert percentile([5.0], 100) == 5.0

    def test_median_of_two(self):
        assert percentile([1.0, 3.0], 50) == 2.0

    def test_extremes(self):
        data = [3.0, 1.0, 2.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 3.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    @given(st.lists(floats, min_size=1, max_size=50), st.floats(0, 100))
    def test_bounded_by_min_max(self, data, q):
        p = percentile(data, q)
        assert min(data) <= p <= max(data)

    @given(st.lists(floats, min_size=1, max_size=50))
    def test_monotone_in_q(self, data):
        qs = [0, 10, 25, 50, 75, 90, 100]
        values = [percentile(data, q) for q in qs]
        assert values == sorted(values)

    def test_matches_numpy(self):
        numpy = pytest.importorskip("numpy")
        data = [0.3, 1.7, 2.2, 9.1, 4.4, 0.01]
        for q in (5, 25, 50, 75, 95, 99):
            assert percentile(data, q) == pytest.approx(
                float(numpy.percentile(data, q))
            )


class TestBasics:
    def test_mean_and_median(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert median([1.0, 2.0, 9.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stddev(self):
        assert stddev([2.0, 2.0, 2.0]) == 0.0
        assert stddev([0.0, 2.0]) == pytest.approx(1.0)


class TestCdfPoints:
    def test_empty(self):
        assert cdf_points([]) == []

    def test_simple(self):
        points = cdf_points([1.0, 2.0, 2.0, 4.0])
        assert points == [(1.0, 0.25), (2.0, 0.75), (4.0, 1.0)]

    @given(st.lists(floats, min_size=1, max_size=40))
    def test_last_point_is_one(self, data):
        points = cdf_points(data)
        assert points[-1][1] == pytest.approx(1.0)
        xs = [x for x, _ in points]
        assert xs == sorted(set(xs))
        fractions = [f for _, f in points]
        assert fractions == sorted(fractions)


class TestExponentialAverage:
    def test_first_sample_is_value(self):
        ewma = ExponentialAverage(alpha=0.3)
        assert not ewma.initialized
        ewma.update(10.0)
        assert ewma.value == 10.0

    def test_smoothing(self):
        ewma = ExponentialAverage(alpha=0.5)
        ewma.update(0.0)
        ewma.update(1.0)
        assert ewma.value == 0.5

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            ExponentialAverage(alpha=0.0)
        with pytest.raises(ValueError):
            ExponentialAverage(alpha=1.5)

    def test_value_before_update_raises(self):
        with pytest.raises(ValueError):
            ExponentialAverage().value

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=30))
    def test_stays_within_sample_range(self, samples):
        ewma = ExponentialAverage(alpha=0.4)
        for s in samples:
            ewma.update(s)
        assert min(samples) - 1e-9 <= ewma.value <= max(samples) + 1e-9


class TestWelford:
    @given(st.lists(floats, min_size=1, max_size=60))
    def test_matches_direct_computation(self, data):
        w = Welford()
        w.extend(data)
        assert w.mean == pytest.approx(mean(data), rel=1e-6, abs=1e-6)
        assert w.stddev == pytest.approx(stddev(data), rel=1e-6, abs=1e-4)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Welford().mean


class TestSummary:
    def test_of(self):
        s = Summary.of([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.max == 4.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Summary.of([])
