"""Tests for pre-scheduling dependency logic (§3.2, §3.6)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.prescheduling import (
    PendingTaskTable,
    all_to_all_deps,
    tree_reduce_deps,
    tree_reduce_num_reducers,
)


class TestDependencySets:
    def test_all_to_all(self):
        deps = all_to_all_deps(7, 3)
        assert deps == frozenset({(7, 0), (7, 1), (7, 2)})

    def test_all_to_all_empty(self):
        assert all_to_all_deps(0, 0) == frozenset()

    def test_all_to_all_negative_rejected(self):
        with pytest.raises(ValueError):
            all_to_all_deps(0, -1)

    def test_tree_reduce_basic(self):
        assert tree_reduce_deps(1, 8, 0, fan_in=2) == frozenset({(1, 0), (1, 1)})
        assert tree_reduce_deps(1, 8, 3, fan_in=2) == frozenset({(1, 6), (1, 7)})

    def test_tree_reduce_ragged_tail(self):
        # 5 maps, fan_in 2 -> reducer 2 gets only map 4.
        assert tree_reduce_deps(0, 5, 2, fan_in=2) == frozenset({(0, 4)})

    def test_tree_reduce_out_of_range(self):
        with pytest.raises(ValueError):
            tree_reduce_deps(0, 4, 2, fan_in=2)

    def test_tree_reduce_bad_fan_in(self):
        with pytest.raises(ValueError):
            tree_reduce_deps(0, 4, 0, fan_in=0)

    def test_tree_num_reducers(self):
        assert tree_reduce_num_reducers(8, 2) == 4
        assert tree_reduce_num_reducers(5, 2) == 3
        assert tree_reduce_num_reducers(1, 4) == 1

    def test_tree_deps_cover_all_maps(self):
        num_maps, fan_in = 13, 3
        covered = set()
        for r in range(tree_reduce_num_reducers(num_maps, fan_in)):
            deps = tree_reduce_deps(0, num_maps, r, fan_in)
            assert covered.isdisjoint(deps)
            covered |= deps
        assert covered == all_to_all_deps(0, num_maps)

    def test_tree_smaller_than_all_to_all(self):
        tree = tree_reduce_deps(0, 64, 5, fan_in=2)
        assert len(tree) == 2
        assert tree < all_to_all_deps(0, 64)


class TestPendingTaskTable:
    def test_no_deps_immediately_ready(self):
        table = PendingTaskTable()
        assert table.register("t0", frozenset()) is True
        assert len(table) == 0
        assert table.was_activated("t0")

    def test_activates_on_last_notification(self):
        table = PendingTaskTable()
        deps = frozenset({(0, 0), (0, 1)})
        assert table.register("t0", deps) is False
        assert table.notify((0, 0)) == []
        assert table.notify((0, 1)) == ["t0"]

    def test_notification_before_registration_buffered(self):
        table = PendingTaskTable()
        table.notify((0, 1))
        # Registering after the notification counts it as satisfied.
        assert table.register("t0", frozenset({(0, 1)})) is True

    def test_duplicate_notification_idempotent(self):
        table = PendingTaskTable()
        table.register("t0", frozenset({(0, 0), (0, 1)}))
        table.notify((0, 0))
        assert table.notify((0, 0)) == []
        assert table.notify((0, 1)) == ["t0"]
        # A further duplicate never re-activates.
        assert table.notify((0, 1)) == []

    def test_multiple_tasks_one_notification(self):
        table = PendingTaskTable()
        table.register("a", frozenset({(0, 0)}))
        table.register("b", frozenset({(0, 0)}))
        ready = table.notify((0, 0))
        assert sorted(ready) == ["a", "b"]

    def test_unrelated_notification_ignored(self):
        table = PendingTaskTable()
        table.register("a", frozenset({(0, 0)}))
        assert table.notify((1, 0)) == []
        assert len(table) == 1

    def test_double_register_rejected(self):
        table = PendingTaskTable()
        table.register("a", frozenset({(0, 0)}))
        with pytest.raises(ValueError):
            table.register("a", frozenset({(0, 1)}))

    def test_register_after_activation_rejected(self):
        table = PendingTaskTable()
        table.register("a", frozenset())
        with pytest.raises(ValueError):
            table.register("a", frozenset({(0, 0)}))

    def test_pre_populate(self):
        table = PendingTaskTable()
        table.register("a", frozenset({(0, 0), (0, 1), (0, 2)}))
        ready = table.pre_populate(frozenset({(0, 0), (0, 1)}))
        assert ready == []
        assert table.notify((0, 2)) == ["a"]

    def test_cancel(self):
        table = PendingTaskTable()
        table.register("a", frozenset({(0, 0)}))
        assert table.cancel("a") is True
        assert table.cancel("a") is False
        assert table.notify((0, 0)) == []

    def test_entry_tracks_progress(self):
        table = PendingTaskTable()
        table.register("a", frozenset({(0, 0), (0, 1)}))
        table.notify((0, 0))
        entry = table.entry("a")
        assert entry is not None
        assert entry.satisfied == {(0, 0)}
        assert entry.outstanding == {(0, 1)}


@st.composite
def _tasks_and_order(draw):
    """Random task dependency sets + a random interleaving of register
    and notify events."""
    num_deps = draw(st.integers(1, 8))
    deps = [(0, i) for i in range(num_deps)]
    num_tasks = draw(st.integers(1, 5))
    task_deps = {
        f"t{t}": frozenset(
            draw(
                st.lists(st.sampled_from(deps), min_size=1, max_size=num_deps).map(set)
            )
        )
        for t in range(num_tasks)
    }
    events = [("register", key) for key in task_deps]
    events += [("notify", dep) for dep in deps]
    order = draw(st.permutations(events))
    return task_deps, order


class TestPendingTableProperties:
    @given(_tasks_and_order())
    def test_every_task_activates_exactly_once(self, case):
        """Under ANY interleaving of registrations and notifications, each
        task becomes runnable exactly once, and only after all of its
        dependencies were notified."""
        task_deps, order = case
        table = PendingTaskTable()
        activated = []
        notified = set()
        for kind, payload in order:
            if kind == "register":
                if table.register(payload, task_deps[payload]):
                    activated.append(payload)
                    assert task_deps[payload] <= notified
            else:
                notified.add(payload)
                ready = table.notify(payload)
                for key in ready:
                    assert task_deps[key] <= notified
                activated.extend(ready)
        assert sorted(activated) == sorted(task_deps)
        assert len(set(activated)) == len(activated)
