"""Tests for state stores, checkpoints, sinks, and window helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.streaming.sinks import AppendSink, IdempotentSink
from repro.streaming.state import Checkpoint, CheckpointStore, StateStore
from repro.streaming.windows import WindowEmitter, window_end, window_for


class TestStateStore:
    def test_put_get_delete(self):
        store = StateStore("s")
        store.put("a", 1)
        assert store.get("a") == 1
        assert store.get("missing", 7) == 7
        store.delete("a")
        assert store.get("a") is None
        store.delete("a")  # idempotent

    def test_update_many_merges(self):
        store = StateStore("s")
        store.update_many({"a": 1, "b": 2}, merge=lambda x, y: x + y)
        store.update_many({"a": 10}, merge=lambda x, y: x + y)
        assert dict(store.items()) == {"a": 11, "b": 2}

    def test_snapshot_is_deep(self):
        store = StateStore("s")
        store.put("a", [1, 2])
        snap = store.snapshot()
        store.get("a").append(3)
        assert snap["a"] == [1, 2]

    def test_restore_replaces_contents(self):
        store = StateStore("s")
        store.put("a", 1)
        store.restore({"b": 2})
        assert dict(store.items()) == {"b": 2}
        assert len(store) == 1

    def test_restore_is_deep(self):
        store = StateStore("s")
        snapshot = {"a": [1]}
        store.restore(snapshot)
        store.get("a").append(2)
        assert snapshot["a"] == [1]


class TestCheckpointStore:
    def test_latest(self):
        cps = CheckpointStore()
        assert cps.latest() is None
        cps.save(Checkpoint(0, {}))
        cps.save(Checkpoint(5, {}))
        assert cps.latest().batch_index == 5

    def test_keep_limit(self):
        cps = CheckpointStore(keep=2)
        for i in range(5):
            cps.save(Checkpoint(i, {}))
        assert len(cps) == 2
        assert cps.latest().batch_index == 4

    def test_keep_must_be_positive(self):
        with pytest.raises(ValueError):
            CheckpointStore(keep=0)


class TestIdempotentSink:
    def test_commit_and_read(self):
        sink = IdempotentSink()
        assert sink.commit(0, ["a"]) is True
        assert sink.commit(1, ["b", "c"]) is True
        assert sink.all_records() == ["a", "b", "c"]
        assert sink.committed_batches() == [0, 1]
        assert sink.records_for(1) == ["b", "c"]

    def test_duplicate_suppressed(self):
        sink = IdempotentSink()
        sink.commit(0, ["a"])
        assert sink.commit(0, ["DUPLICATE"]) is False
        assert sink.all_records() == ["a"]
        assert sink.duplicate_commits == 1

    def test_ordering_by_batch_id(self):
        sink = IdempotentSink()
        sink.commit(2, ["late"])
        sink.commit(0, ["early"])
        assert sink.all_records() == ["early", "late"]


class TestAppendSink:
    def test_no_dedup(self):
        sink = AppendSink()
        sink.commit(0, ["a"])
        sink.commit(0, ["a"])
        assert sink.all_records() == ["a", "a"]
        assert sink.commits() == [(0, "a"), (0, "a")]


class TestWindowMath:
    def test_window_for(self):
        assert window_for(0.0, 10.0) == 0
        assert window_for(9.99, 10.0) == 0
        assert window_for(10.0, 10.0) == 1
        assert window_for(25.0, 10.0) == 2

    def test_window_with_offset(self):
        assert window_for(12.0, 10.0, offset=5.0) == 0
        assert window_for(15.0, 10.0, offset=5.0) == 1

    def test_window_end(self):
        assert window_end(0, 10.0) == 10.0
        assert window_end(2, 10.0) == 30.0
        assert window_end(0, 10.0, offset=5.0) == 15.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            window_for(0.0, 0.0)

    @given(st.floats(-1e6, 1e6), st.floats(0.001, 1e4))
    def test_event_inside_its_window(self, t, size):
        w = window_for(t, size)
        assert w * size <= t + 1e-6
        assert t <= window_end(w, size) + 1e-6


class TestWindowEmitter:
    def test_emits_closed_windows_only(self):
        store = StateStore("w")
        store.put(("c1", 0), 5)   # window [0, 10)
        store.put(("c1", 1), 3)   # window [10, 20)
        emitter = WindowEmitter(window_size=10.0, watermark_for=lambda b: 10.0 * (b + 1))
        out = emitter(store, batch_index=0)  # watermark = 10
        assert out == [("c1", 0, 5)]
        assert dict(store.items()) == {("c1", 1): 3}

    def test_each_window_emitted_once(self):
        store = StateStore("w")
        store.put(("c1", 0), 5)
        emitter = WindowEmitter(window_size=10.0, watermark_for=lambda b: 100.0)
        assert emitter(store, 0) == [("c1", 0, 5)]
        assert emitter(store, 1) == []

    def test_allowed_lateness_delays_close(self):
        store = StateStore("w")
        store.put(("c1", 0), 5)
        emitter = WindowEmitter(
            window_size=10.0, watermark_for=lambda b: 12.0, allowed_lateness=5.0
        )
        assert emitter(store, 0) == []  # effective watermark 7 < 10

    def test_output_sorted(self):
        store = StateStore("w")
        store.put(("b", 0), 1)
        store.put(("a", 0), 2)
        store.put(("a", 1), 3)
        emitter = WindowEmitter(window_size=10.0, watermark_for=lambda b: 100.0)
        out = emitter(store, 0)
        assert out == [("a", 0, 2), ("b", 0, 1), ("a", 1, 3)]
