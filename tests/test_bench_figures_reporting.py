"""Tests for the benchmark harness: figure functions + reporting."""

import pytest

from repro.bench.figures import (
    ablation_pipelined,
    ablation_treereduce,
    fig4a_group_scheduling,
    fig4b_breakdown,
    fig5a_heavy_compute,
    fig5b_prescheduling,
    fig7_fault_tolerance,
    fig9_workload_comparison,
    group_tuning_trace,
    table2_query_analysis,
    throughput_vs_latency,
    yahoo_latency_cdf,
)
from repro.bench.reporting import latency_summary_row, render_cdf, render_table


class TestMicrobenchFigures:
    def test_fig4a_shape(self):
        rows = fig4a_group_scheduling(machine_counts=(4, 128))
        assert [r["machines"] for r in rows] == [4, 128]
        for row in rows:
            assert row["drizzle_g100_ms"] < row["drizzle_g25_ms"] < row["spark_ms"]
        assert rows[1]["speedup_g100"] > rows[0]["speedup_g100"]

    def test_fig4b_breakdown(self):
        rows = fig4b_breakdown()
        by_system = {r["system"]: r for r in rows}
        spark = by_system["Spark"]
        drizzle = by_system["Drizzle, Group=100"]
        assert drizzle["scheduler_delay_ms"] < spark["scheduler_delay_ms"] / 5
        assert drizzle["compute_ms"] == spark["compute_ms"]

    def test_fig5a_diminishing_returns(self):
        rows = fig5a_heavy_compute(machine_counts=(128,))
        row = rows[0]
        # Compute dominates: g=25 is within ~10% of g=100.
        assert row["g25_vs_g100_gap_ms"] / row["drizzle_g100_ms"] < 0.10

    def test_fig5b_ordering(self):
        rows = fig5b_prescheduling(machine_counts=(128,))
        row = rows[0]
        assert row["pre_g100_ms"] < row["pre_g10_ms"] < row["only_pre_ms"] <= row["spark_ms"]
        assert 2.0 < row["speedup_g100"] < 6.5


class TestStreamingFigures:
    def test_yahoo_cdf_unoptimized(self):
        series = yahoo_latency_cdf(optimized=False, duration_s=120)
        assert set(series) == {"drizzle", "spark", "flink"}
        assert all(series[k] for k in series)

    def test_fig7_results(self):
        results = fig7_fault_tolerance(duration_s=350)
        by_system = {r.system: r for r in results}
        assert by_system["flink"].spike_s > 5 * by_system["drizzle"].spike_s
        assert by_system["drizzle"].windows_disrupted <= 2
        assert by_system["flink"].windows_disrupted >= 3
        assert by_system["flink"].recovery_time_s > by_system["drizzle"].recovery_time_s

    def test_fig9(self):
        series = fig9_workload_comparison(duration_s=120)
        assert set(series) == {"drizzle_yahoo", "drizzle_video"}

    def test_throughput_rows(self):
        rows = throughput_vs_latency(optimized=False, targets_s=(0.25, 1.0))
        assert rows[0]["spark_Mev_s"] == 0.0
        assert rows[0]["drizzle_Mev_s"] > 10.0
        assert rows[1]["spark_Mev_s"] > 0.0


class TestTable2AndAblations:
    def test_table2(self):
        out = table2_query_analysis(num_queries=20_000, seed=1)
        assert out["total_queries"] == 20_000
        assert 0.22 < out["aggregation_fraction"] < 0.28
        # 95.09 % in expectation; allow sampling noise at 20k queries.
        assert out["partial_merge_fraction"] > 0.94
        assert abs(out["percentages"]["First/Last"] - 25.9) < 2.5

    def test_tuning_trace_adapts(self):
        rows = group_tuning_trace()
        sizes = [r["group_size"] for r in rows]
        phase1_end = sizes[79]
        phase2_end = sizes[159]
        phase3_end = sizes[239]
        assert phase2_end > phase1_end  # bigger cluster -> bigger groups
        assert phase3_end < phase2_end  # shrinks back afterwards
        # Overhead ends near/inside the band in every phase.
        for idx in (79, 159, 239):
            assert rows[idx]["overhead"] < 0.30

    def test_ablation_pipelined(self):
        rows = ablation_pipelined(machine_counts=(4, 128))
        big = rows[-1]
        assert big["pipelined_ms"] > 5 * big["drizzle_g100_ms"]
        assert big["sched_dominates"]

    def test_ablation_treereduce(self):
        out = ablation_treereduce(num_maps=128, fan_in=2)
        assert out["mean_activation_tree"] < out["mean_activation_all_to_all"]
        assert out["speedup"] > 1.2


class TestReporting:
    def test_render_table_aligned(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["xxx", 0.001]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_cdf(self):
        text = render_cdf({"s1": [0.1, 0.2, 0.3], "s2": [0.2, 0.4, 0.6]}, title="L")
        assert "p50" in text
        assert "s1" in text and "s2" in text

    def test_latency_summary_row(self):
        row = latency_summary_row("x", [0.1, 0.2, 0.3])
        assert row[0] == "x"
        assert row[1] == pytest.approx(200.0)  # median in ms


class TestBenchEnvironmentAndBaseline:
    def test_environment_fingerprint_fields(self):
        from repro.bench.reporting import bench_environment

        env = bench_environment()
        assert set(env) >= {"cpu_count", "platform", "python", "git_sha", "transport"}
        assert env["cpu_count"] >= 1
        assert env["transport"]["data_plane"]["max_concurrent_fetches"] >= 1

    def test_write_bench_json_embeds_environment(self, tmp_path):
        import json

        from repro.bench.reporting import write_bench_json

        path = write_bench_json("envtest", {"rows": []}, out_dir=str(tmp_path))
        with open(path) as f:
            doc = json.load(f)
        assert doc["experiment"] == "envtest"
        assert "git_sha" in doc["environment"]

    def test_load_baseline_rows_from_file_and_dir(self, tmp_path):
        from repro.bench.reporting import load_baseline_rows, write_bench_json

        rows = [{"transport": "tcp", "group_size": 20, "ms_per_batch": 2.0}]
        path = write_bench_json("base", {"rows": rows}, out_dir=str(tmp_path))
        assert load_baseline_rows("base", path) == rows
        assert load_baseline_rows("base", str(tmp_path)) == rows
        assert load_baseline_rows("missing", str(tmp_path)) is None

    def test_diff_against_baseline_flags_regressions_only(self):
        from repro.bench.reporting import diff_against_baseline

        baseline = [
            {"transport": "tcp", "group_size": 20, "ms_per_batch": 2.0},
            {"transport": "tcp", "group_size": 1, "ms_per_batch": 1.0},
            {"transport": "inproc", "group_size": 20, "ms_per_batch": 0.5},
        ]
        current = [
            {"transport": "tcp", "group_size": 20, "ms_per_batch": 1.0},  # improved
            {"transport": "tcp", "group_size": 1, "ms_per_batch": 1.5},  # regressed
            {"transport": "inproc", "group_size": 5, "ms_per_batch": 9.9},  # no base
        ]
        report, regressions = diff_against_baseline(
            current, baseline, regression_threshold=1.20
        )
        assert regressions == 1
        assert "improved" in report and "REGRESSION" in report
        assert "no baseline row" in report

    def test_diff_within_noise_threshold_is_ok(self):
        from repro.bench.reporting import diff_against_baseline

        base = [{"transport": "tcp", "group_size": 20, "ms_per_batch": 1.0}]
        cur = [{"transport": "tcp", "group_size": 20, "ms_per_batch": 1.1}]
        report, regressions = diff_against_baseline(cur, base)
        assert regressions == 0
        assert "ok" in report
