"""Fault-tolerance tests for the real engine (§3.3).

These inject machine failures at various points — before map tasks run,
between map and reduce, mid-group — and assert results are still exactly
correct, plus the §3.3 mechanics: parallel recovery across batches,
pre-population of completed dependencies, reuse of surviving intermediate
outputs, elasticity, and heartbeat-based detection.
"""

import threading
import time

import pytest

from repro.common.config import EngineConf, MonitorConf, SchedulingMode, TransportConf
from repro.common.errors import WorkerLost
from repro.common.metrics import COUNT_RECOVERIES, COUNT_TASKS_LAUNCHED
from repro.dag.dataset import SourceDataset, parallelize
from repro.dag.plan import collect_action, compile_plan, dict_action
from repro.engine.cluster import LocalCluster

from engine_test_utils import ALL_TRANSPORTS, make_cluster


def slow_source(num_partitions, delay_s=0.15, items_per_partition=10):
    def partition_fn(index):
        time.sleep(delay_s)
        return list(range(index * items_per_partition, (index + 1) * items_per_partition))

    return SourceDataset(partition_fn, num_partitions)


def keyed_sum_expected(total_items, num_keys):
    expected = {}
    for x in range(total_items):
        expected[x % num_keys] = expected.get(x % num_keys, 0) + x
    return expected


@pytest.mark.parametrize(
    "mode", [SchedulingMode.DRIZZLE, SchedulingMode.PER_BATCH, SchedulingMode.PRE_SCHEDULED]
)
class TestKillDuringJob:
    def test_kill_worker_mid_map(self, mode):
        with make_cluster(mode, workers=4, slots=1) as cluster:
            ds = slow_source(8).map(lambda x: (x % 4, x)).reduce_by_key(
                lambda a, b: a + b, 4
            )
            plan = compile_plan(ds, dict_action())
            killer = threading.Timer(0.05, lambda: cluster.kill_worker("worker-1"))
            killer.start()
            result = cluster.run_plan(plan)
            assert result == keyed_sum_expected(80, 4)
            assert cluster.metrics.counter(COUNT_RECOVERIES).value == 1

    def test_kill_two_workers(self, mode):
        with make_cluster(mode, workers=4, slots=1) as cluster:
            ds = slow_source(8).map(lambda x: (x % 3, x)).reduce_by_key(
                lambda a, b: a + b, 3
            )
            plan = compile_plan(ds, dict_action())
            t1 = threading.Timer(0.05, lambda: cluster.kill_worker("worker-0"))
            t2 = threading.Timer(0.12, lambda: cluster.kill_worker("worker-2"))
            t1.start()
            t2.start()
            result = cluster.run_plan(plan)
            assert result == keyed_sum_expected(80, 3)


class TestFetchFailureRecovery:
    def test_kill_after_maps_before_reduce(self):
        """Maps complete, then their machine dies: reduce tasks hit fetch
        failures, the driver regenerates the lost map outputs, and the job
        still produces the exact answer."""
        # Pinned inproc: the reduce closure captures a threading.Event to
        # time the kill — shared-memory coordination that cannot cross a
        # real wire.
        with make_cluster(
            SchedulingMode.DRIZZLE, workers=4, slots=1, transport="inproc"
        ) as cluster:
            barrier = threading.Event()

            def source(index):
                # Reduce-side stall so the kill lands between stages.
                return list(range(index * 5, index * 5 + 5))

            def slow_reduce(a, b):
                barrier.wait(0.3)
                return a + b

            ds = (
                SourceDataset(source, 4)
                .map(lambda x: (x % 2, x))
                .reduce_by_key(slow_reduce, 2)
            )
            plan = compile_plan(ds, dict_action())

            def kill_soon():
                time.sleep(0.1)
                cluster.kill_worker("worker-3")
                barrier.set()

            threading.Thread(target=kill_soon, daemon=True).start()
            result = cluster.run_plan(plan)
            assert result == keyed_sum_expected(20, 2)


class TestParallelRecovery:
    def test_recovery_spans_all_inflight_batches(self):
        """Killing one machine while a whole group is in flight recovers
        every affected micro-batch (parallel recovery, §3.3)."""
        with make_cluster(SchedulingMode.DRIZZLE, workers=4, slots=1, group_size=4) as cluster:
            def build(b):
                ds = slow_source(4, delay_s=0.1).map(
                    lambda x, b=b: (x % 2, x + b)
                ).reduce_by_key(lambda a, b: a + b, 2)
                return compile_plan(ds, dict_action())

            plans = [build(b) for b in range(4)]
            killer = threading.Timer(0.05, lambda: cluster.kill_worker("worker-2"))
            killer.start()
            results = cluster.run_group(plans, job_keys=[f"b{b}" for b in range(4)])
            for b, result in enumerate(results):
                expected = {}
                for x in range(40):
                    expected[x % 2] = expected.get(x % 2, 0) + x + b
                assert result == expected


class TestIntermediateReuse:
    # Both tests pinned inproc: the source closure counts invocations in
    # a captured list guarded by a captured lock — observable only while
    # driver and workers share memory.
    def test_resubmission_reuses_surviving_map_outputs(self):
        """Re-submitting the same job_key with reuse=True must skip map
        tasks whose outputs survived (lineage reuse across attempts)."""
        calls = []
        lock = threading.Lock()

        def source(index):
            with lock:
                calls.append(index)
            return [(index % 2, index)]

        with make_cluster(
            SchedulingMode.DRIZZLE, workers=2, slots=2, transport="inproc"
        ) as cluster:
            ds = SourceDataset(source, 4).reduce_by_key(lambda a, b: a + b, 2)
            plan = compile_plan(ds, dict_action())
            first = cluster.run_plan(plan, job_key="batch-7")
            n_first = len(calls)
            second = cluster.run_plan(plan, job_key="batch-7", reuse=True)
            assert first == second
            # No map task re-ran: outputs were all still available.
            assert len(calls) == n_first

    def test_resubmission_without_reuse_recomputes(self):
        calls = []
        lock = threading.Lock()

        def source(index):
            with lock:
                calls.append(index)
            return [(index % 2, index)]

        with make_cluster(
            SchedulingMode.DRIZZLE, workers=2, slots=2, transport="inproc"
        ) as cluster:
            ds = SourceDataset(source, 4).reduce_by_key(lambda a, b: a + b, 2)
            plan = compile_plan(ds, dict_action())
            cluster.run_plan(plan, job_key="batch-7")
            n_first = len(calls)
            cluster.run_plan(plan, job_key="batch-7", reuse=False)
            assert len(calls) == 2 * n_first


class TestElasticity:
    # Pinned inproc: sources record executing-thread names into a
    # captured set (shared-memory observation).
    def test_added_worker_used_by_next_group(self):
        with make_cluster(
            SchedulingMode.DRIZZLE, workers=2, slots=1, transport="inproc"
        ) as cluster:
            new_id = cluster.add_worker()
            seen = set()
            lock = threading.Lock()

            def source(index):
                with lock:
                    seen.add(threading.current_thread().name.split("-slot")[0])
                return [index]

            ds = SourceDataset(source, 6)
            out = cluster.collect(ds)
            assert sorted(out) == list(range(6))
            assert new_id in cluster.alive_workers()
            assert any(name.startswith(new_id) for name in seen)

    def test_decommissioned_worker_excluded_from_placement(self):
        with make_cluster(
            SchedulingMode.DRIZZLE, workers=3, slots=1, transport="inproc"
        ) as cluster:
            cluster.decommission_worker("worker-1")
            seen = set()
            lock = threading.Lock()

            def source(index):
                with lock:
                    seen.add(threading.current_thread().name.split("-slot")[0])
                return [index]

            out = cluster.collect(SourceDataset(source, 6))
            assert sorted(out) == list(range(6))
            assert not any(name.startswith("worker-1") for name in seen)

    def test_all_workers_lost_fails_job(self):
        with make_cluster(SchedulingMode.DRIZZLE, workers=1, slots=1) as cluster:
            ds = slow_source(2, delay_s=0.3)
            plan = compile_plan(ds, collect_action())
            job_ids = cluster.driver.submit_group([plan])
            cluster.kill_worker("worker-0")
            with pytest.raises(WorkerLost):
                cluster.driver.wait_job(job_ids[0], timeout=5)


class TestHeartbeatDetection:
    def test_silent_crash_detected_by_heartbeat_timeout(self):
        conf = EngineConf(
            num_workers=3,
            slots_per_worker=1,
            scheduling_mode=SchedulingMode.DRIZZLE,
            monitor=MonitorConf(
                enable_heartbeats=True,
                heartbeat_interval_s=0.03,
                heartbeat_timeout_s=0.12,
            ),
        )
        with LocalCluster(conf) as cluster:
            ds = slow_source(6, delay_s=0.2).map(lambda x: (x % 2, x)).reduce_by_key(
                lambda a, b: a + b, 2
            )
            plan = compile_plan(ds, dict_action())
            # Kill WITHOUT telling the driver: only heartbeats reveal it.
            killer = threading.Timer(
                0.05, lambda: cluster.kill_worker("worker-1", notify_driver=False)
            )
            killer.start()
            result = cluster.run_plan(plan)
            assert result == keyed_sum_expected(60, 2)
            assert cluster.metrics.counter(COUNT_RECOVERIES).value == 1

    def test_idempotent_worker_lost(self):
        with make_cluster(SchedulingMode.DRIZZLE, workers=3) as cluster:
            cluster.kill_worker("worker-0")
            # A second report of the same failure is a no-op.
            cluster.driver.on_worker_lost("worker-0")
            assert cluster.metrics.counter(COUNT_RECOVERIES).value == 1
            assert len(cluster.alive_workers()) == 2


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestBackendRecovery:
    """Kill-mid-job recovery on the concurrent backends (the inline
    backend runs tasks synchronously, so a mid-job kill has nothing to
    race against)."""

    def test_kill_worker_mid_map(self, backend):
        with make_cluster(
            SchedulingMode.DRIZZLE, workers=4, slots=1, backend=backend
        ) as cluster:
            ds = slow_source(8).map(lambda x: (x % 4, x)).reduce_by_key(
                lambda a, b: a + b, 4
            )
            plan = compile_plan(ds, dict_action())
            killer = threading.Timer(0.05, lambda: cluster.kill_worker("worker-1"))
            killer.start()
            result = cluster.run_plan(plan)
            killer.join()
            assert result == keyed_sum_expected(80, 4)
            assert cluster.metrics.counter(COUNT_RECOVERIES).value >= 1


@pytest.mark.parametrize("transport", ALL_TRANSPORTS)
class TestTransportRecovery:
    """The §3.3 recovery path must be transport-independent: over tcp a
    killed worker's *server* goes away, so failure surfaces as connection
    refused/reset instead of an in-process dead-set check — same
    WorkerLost, same recovery."""

    def test_kill_worker_mid_map(self, transport):
        with make_cluster(
            SchedulingMode.DRIZZLE, workers=4, slots=1, transport=transport
        ) as cluster:
            ds = slow_source(8).map(lambda x: (x % 4, x)).reduce_by_key(
                lambda a, b: a + b, 4
            )
            plan = compile_plan(ds, dict_action())
            killer = threading.Timer(0.05, lambda: cluster.kill_worker("worker-1"))
            killer.start()
            result = cluster.run_plan(plan)
            killer.join()
            assert result == keyed_sum_expected(80, 4)
            assert cluster.metrics.counter(COUNT_RECOVERIES).value >= 1

    def test_silent_server_death_detected_by_heartbeat(self, transport):
        """Acceptance: killing a tcp worker's server mid-job (driver NOT
        notified) is detected via heartbeat timeout and the job completes
        through recovery — recomputation, not a hang."""
        conf = EngineConf(
            num_workers=3,
            slots_per_worker=1,
            scheduling_mode=SchedulingMode.DRIZZLE,
            monitor=MonitorConf(
                enable_heartbeats=True,
                heartbeat_interval_s=0.03,
                heartbeat_timeout_s=0.12,
            ),
            transport=TransportConf(
                backend=transport, max_retries=1, retry_backoff_s=0.01
            ),
        )
        with LocalCluster(conf) as cluster:
            ds = slow_source(6, delay_s=0.2).map(lambda x: (x % 2, x)).reduce_by_key(
                lambda a, b: a + b, 2
            )
            plan = compile_plan(ds, dict_action())
            killer = threading.Timer(
                0.05, lambda: cluster.kill_worker("worker-1", notify_driver=False)
            )
            killer.start()
            result = cluster.run_plan(plan)
            killer.join()
            assert result == keyed_sum_expected(60, 2)
            assert cluster.metrics.counter(COUNT_RECOVERIES).value == 1
            # Recomputation happened: more task launches than the job's
            # 6 maps + 2 reduces.
            assert cluster.metrics.counter(COUNT_TASKS_LAUNCHED).value > 8
