"""Executor backends: selection, serialization boundary, conf round-trip,
deprecated-kwarg aliases, and resource cleanup."""

import multiprocessing
import pickle
import threading
import warnings

import pytest

from repro.common.config import (
    EngineConf,
    ExecutorConf,
    MonitorConf,
    SchedulingMode,
    TransportConf,
)
from repro.common.errors import ConfigError, SerializationError
from repro.dag.dataset import parallelize
from repro.dag.serde import dumps_closure, loads_closure
from repro.engine.cluster import LocalCluster
from repro.engine.executors import (
    InlineExecutor,
    ProcessExecutor,
    ThreadExecutor,
    create_backend,
)

from engine_test_utils import make_cluster


def _conf(backend: str, **kwargs) -> EngineConf:
    kwargs.setdefault("num_workers", 2)
    kwargs.setdefault("slots_per_worker", 2)
    # Pin the in-process transport: these tests are about executor
    # backends, and the inline executor is deliberately *deferred* (not
    # synchronous) when the tcp transport is active.
    kwargs.setdefault("transport", TransportConf(backend="inproc"))
    return EngineConf(executor=ExecutorConf(backend=backend), **kwargs)


class TestBackendSelection:
    def test_create_backend_types(self):
        assert isinstance(create_backend(_conf("inline"), "w"), InlineExecutor)
        assert isinstance(create_backend(_conf("thread"), "w"), ThreadExecutor)
        backend = create_backend(_conf("process"), "w")
        try:
            assert isinstance(backend, ProcessExecutor)
        finally:
            backend.shutdown()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="inline"):
            EngineConf(executor=ExecutorConf(backend="fiber")).validate()

    def test_thread_backend_keeps_slot_thread_naming(self):
        """Elasticity tests and examples identify the executing worker by
        the historical '{worker_id}-slot' thread-name prefix."""
        backend = create_backend(_conf("thread", slots_per_worker=3), "worker-9")
        try:
            names = backend.slot_thread_names
            assert len(names) == 3
            assert all(n.startswith("worker-9-slot") for n in names)
        finally:
            backend.shutdown()

    def test_inline_backend_is_synchronous(self):
        ran_in = []
        backend = create_backend(_conf("inline"), "w")
        backend.submit(lambda: ran_in.append(threading.current_thread().name))
        assert ran_in == [threading.current_thread().name]


class TestClosureSerde:
    def test_lambda_with_capture_roundtrips(self):
        base = 10
        fn = loads_closure(dumps_closure(lambda x: x + base))
        assert fn(5) == 15

    def test_nested_closure_roundtrips(self):
        def outer(k):
            def inner(x):
                return x * k

            return inner

        fn = loads_closure(dumps_closure(outer(3)))
        assert fn(7) == 21

    def test_global_function_reference_roundtrips(self):
        fn = loads_closure(dumps_closure(_module_level_double))
        assert fn(4) == 8

    def test_function_referencing_global_helper(self):
        fn = loads_closure(dumps_closure(lambda x: _module_level_double(x) + 1))
        assert fn(4) == 9

    def test_defaults_and_kwdefaults_roundtrip(self):
        def f(x, y=5, *, z=7):
            return x + y + z

        fn = loads_closure(dumps_closure(f))
        assert fn(1) == 13

    def test_unpicklable_capture_named_in_error(self):
        lock = threading.Lock()
        with pytest.raises(SerializationError, match="lock"):
            dumps_closure(lambda x: (lock, x))

    def test_error_is_not_raw_pickling_error(self):
        lock = threading.Lock()
        with pytest.raises(SerializationError):
            try:
                dumps_closure(lambda x: (lock, x))
            except pickle.PicklingError:
                pytest.fail("raw PicklingError leaked through dumps_closure")


class TestProcessBoundary:
    def test_unpicklable_closure_raises_named_serialization_error(self):
        """The acceptance case: an unpicklable capture under the process
        backend surfaces as SerializationError naming the capture, not a
        PicklingError from the pool."""
        lock = threading.Lock()
        with LocalCluster(_conf("process")) as cluster:
            ds = parallelize(range(4), 2).map(lambda x: (lock, x)[1])
            with pytest.raises(SerializationError, match="lock"):
                cluster.collect(ds)

    def test_child_error_type_preserved(self):
        from repro.common.errors import TaskError

        with LocalCluster(_conf("process")) as cluster:
            ds = parallelize(range(4), 2).map(lambda x: 1 // 0)
            with pytest.raises(TaskError) as excinfo:
                cluster.collect(ds)
            assert isinstance(excinfo.value.cause, ZeroDivisionError)

    def test_process_pool_cleaned_up_on_shutdown(self):
        with LocalCluster(_conf("process")) as cluster:
            assert sorted(cluster.collect(parallelize(range(8), 4))) == list(range(8))
            assert multiprocessing.active_children()
        assert not multiprocessing.active_children()

    def test_trace_spans_survive_process_boundary(self):
        from repro.common.config import TracingConf
        from repro.obs.names import SPAN_TASK_COMPUTE, SPAN_TASK_EXEC

        conf = _conf("process", tracing=TracingConf(enabled=True))
        with LocalCluster(conf) as cluster:
            cluster.collect(parallelize(range(4), 2).map(lambda x: x + 1))
            events = cluster.tracer.events()
        execs = [e for e in events if e["name"] == SPAN_TASK_EXEC]
        computes = {
            e["span_id"]: e for e in events if e["name"] == SPAN_TASK_COMPUTE
        }
        assert execs, "no task.exec spans recorded for the process backend"
        for span in execs:
            # The context rode the payload into the child and back; the
            # exec span must be parented under its task.compute span.
            assert span["parent_id"] in computes
            assert span["trace_id"] == computes[span["parent_id"]]["trace_id"]


class TestConfRoundTrip:
    def test_to_dict_from_dict_roundtrip(self):
        conf = EngineConf(
            num_workers=3,
            scheduling_mode=SchedulingMode.PRE_SCHEDULED,
            group_size=5,
            executor=ExecutorConf(backend="inline"),
            transport=TransportConf(rpc_latency_s=0.01),
            monitor=MonitorConf(enable_heartbeats=True, heartbeat_interval_s=0.1,
                                heartbeat_timeout_s=0.4),
        )
        data = conf.to_dict()
        assert data["scheduling_mode"] == "pre_scheduled"
        assert data["executor"]["backend"] == "inline"
        rebuilt = EngineConf.from_dict(data)
        assert rebuilt == conf

    def test_roundtrip_is_json_compatible(self):
        import json

        data = json.loads(json.dumps(EngineConf().to_dict()))
        assert EngineConf.from_dict(data) == EngineConf()

    def test_unknown_key_lists_valid_ones(self):
        with pytest.raises(ConfigError, match="num_workers"):
            EngineConf.from_dict({"wrokers": 4})

    def test_unknown_nested_key_rejected(self):
        with pytest.raises(ConfigError, match="backend"):
            EngineConf.from_dict({"executor": {"backnd": "thread"}})

    def test_bad_scheduling_mode_rejected(self):
        with pytest.raises(ConfigError, match="drizzle"):
            EngineConf.from_dict({"scheduling_mode": "warp-speed"})


class TestDeprecatedAliases:
    def test_cluster_kwargs_warn_and_apply(self):
        with pytest.warns(DeprecationWarning, match="enable_heartbeats"):
            with LocalCluster(
                EngineConf(num_workers=1, slots_per_worker=1),
                enable_heartbeats=False,
            ) as cluster:
                assert cluster.conf.monitor.enable_heartbeats is False

        with pytest.warns(DeprecationWarning, match="rpc_latency_s"):
            with LocalCluster(
                EngineConf(num_workers=1, slots_per_worker=1), rpc_latency_s=0.0
            ) as cluster:
                assert cluster.transport.latency_s == 0.0

    def test_engine_conf_heartbeat_aliases_warn_and_copy(self):
        conf = EngineConf(heartbeat_interval_s=0.02, heartbeat_timeout_s=0.2)
        with pytest.warns(DeprecationWarning, match="heartbeat_interval_s"):
            conf.validate()
        assert conf.monitor.heartbeat_interval_s == 0.02
        assert conf.monitor.heartbeat_timeout_s == 0.2
        # Aliases are consumed: a second validate is warning-free.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            conf.validate()


class TestBackendParityExtras:
    def test_count_action_parity(self):
        counts = set()
        for backend in ("inline", "thread", "process"):
            with make_cluster(
                SchedulingMode.DRIZZLE, workers=2, slots=1, backend=backend
            ) as cluster:
                from repro.dag.plan import compile_plan, count_action

                plan = compile_plan(
                    parallelize(range(37), 3).filter(lambda x: x % 2 == 0),
                    count_action(),
                )
                counts.add(cluster.run_plan(plan))
        assert counts == {19}


def _module_level_double(x):
    return x * 2
