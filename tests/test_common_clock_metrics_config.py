"""Tests for clocks, the metrics registry, and configuration validation."""

import threading

import pytest

from repro.common.clock import ManualClock, WallClock
from repro.common.config import EngineConf, SchedulingMode, TracingConf, TunerConf
from repro.common.errors import ConfigError
from repro.common.metrics import MetricsRegistry


class TestManualClock:
    def test_starts_at_zero(self):
        assert ManualClock().now() == 0.0

    def test_advance(self):
        clock = ManualClock(start=5.0)
        clock.advance(2.5)
        assert clock.now() == 7.5

    def test_cannot_go_backwards(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.set_time(-1)

    def test_sleep_blocks_until_advanced(self):
        clock = ManualClock()
        done = threading.Event()

        def sleeper():
            clock.sleep(1.0)
            done.set()

        t = threading.Thread(target=sleeper, daemon=True)
        t.start()
        assert not done.wait(0.05)
        clock.advance(1.0)
        assert done.wait(2.0)

    def test_wall_clock_monotone(self):
        clock = WallClock()
        a = clock.now()
        clock.sleep(0.001)
        assert clock.now() >= a


class TestMetricsRegistry:
    def test_counter_add(self):
        m = MetricsRegistry()
        m.counter("x").add(2)
        m.counter("x").add(3)
        assert m.counter("x").value == 5

    def test_counter_identity(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")

    def test_series(self):
        m = MetricsRegistry()
        m.series("s").record(1.0)
        m.series("s").record(2.0)
        assert m.series("s").snapshot() == [1.0, 2.0]
        assert len(m.series("s")) == 2

    def test_series_ring_bounded_with_dropped_count(self):
        m = MetricsRegistry()
        s = m.series("s", max_samples=3)
        for i in range(5):
            s.record(float(i))
        assert s.snapshot() == [2.0, 3.0, 4.0]  # oldest two evicted
        assert s.dropped == 2
        assert s.max_samples == 3
        assert m.snapshot()["series"]["s"]["dropped"] == 2

    def test_series_reset_clears_dropped(self):
        m = MetricsRegistry()
        s = m.series("s", max_samples=2)
        for i in range(4):
            s.record(float(i))
        assert s.dropped == 2
        m.reset()
        assert s.snapshot() == [] and s.dropped == 0

    def test_series_default_bound_and_validation(self):
        from repro.common.metrics import DEFAULT_SERIES_MAX_SAMPLES, TimeSeries

        m = MetricsRegistry()
        assert m.series("s").max_samples == DEFAULT_SERIES_MAX_SAMPLES
        with pytest.raises(ValueError):
            TimeSeries("bad", max_samples=0)

    def test_timed(self):
        clock = ManualClock()
        m = MetricsRegistry(clock)
        with m.timed("t"):
            clock.advance(3.0)
        assert m.counter("t").value == 3.0

    def test_timed_feeds_same_named_histogram(self):
        clock = ManualClock()
        m = MetricsRegistry(clock)
        for elapsed in (1.0, 2.0, 4.0):
            with m.timed("t"):
                clock.advance(elapsed)
        assert m.counter("t").value == 7.0
        assert m.histogram("t").snapshot() == [1.0, 2.0, 4.0]
        assert m.histogram("t").summary()["count"] == 3

    def test_gauge_set_and_add(self):
        m = MetricsRegistry()
        g = m.gauge("group_size")
        assert g is m.gauge("group_size")
        g.set(4)
        g.add(2)
        assert g.value == 6.0
        g.reset()
        assert g.value == 0.0

    def test_histogram_percentiles(self):
        m = MetricsRegistry()
        h = m.histogram("lat")
        for v in range(1, 101):
            h.record(float(v))
        s = h.summary()
        assert s["count"] == 100
        assert s["sum"] == pytest.approx(5050.0)
        assert s["p50"] == pytest.approx(50, abs=1)
        assert s["p99"] == pytest.approx(99, abs=1)
        assert s["max"] == 100.0
        assert len(h) == 100

    def test_empty_histogram_summary(self):
        assert MetricsRegistry().histogram("h").summary() == {"count": 0}

    def test_reset(self):
        m = MetricsRegistry()
        m.counter("x").add(1)
        m.series("s").record(1.0)
        m.gauge("g").set(5)
        m.histogram("h").record(2.0)
        m.reset()
        assert m.counter("x").value == 0
        assert m.series("s").snapshot() == []
        assert m.gauge("g").value == 0
        assert len(m.histogram("h")) == 0

    def test_snapshot(self):
        m = MetricsRegistry()
        m.counter("a").add(1)
        m.counter("b").add(2)
        assert m.counters_snapshot() == {"a": 1, "b": 2}

    def test_unified_snapshot(self):
        m = MetricsRegistry()
        m.counter("c").add(3)
        m.gauge("g").set(7)
        m.histogram("h").record(1.0)
        m.histogram("h").record(3.0)
        m.series("s").record(2.0)
        snap = m.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms", "series"}
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["mean"] == pytest.approx(2.0)
        assert snap["series"]["s"]["count"] == 1
        import json

        json.dumps(snap)  # must be JSON-serializable as exported by bench

    def test_thread_safety(self):
        m = MetricsRegistry()

        def bump():
            for _ in range(1000):
                m.counter("n").add(1)

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter("n").value == 4000


class TestEngineConf:
    def test_defaults_valid(self):
        EngineConf().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_workers": 0},
            {"slots_per_worker": 0},
            {"group_size": 0},
            {"checkpoint_interval_batches": -1},
            {"heartbeat_interval_s": 0},
            {"heartbeat_interval_s": 1.0, "heartbeat_timeout_s": 0.5},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            EngineConf(**kwargs).validate()

    def test_per_batch_mode_normalizes_group_size(self):
        conf = EngineConf(scheduling_mode=SchedulingMode.PER_BATCH, group_size=10)
        conf.validate()
        assert conf.group_size == 1

    def test_total_slots(self):
        assert EngineConf(num_workers=3, slots_per_worker=4).total_slots == 12

    def test_effective_checkpoint_interval_defaults_to_group(self):
        conf = EngineConf(group_size=7)
        assert conf.effective_checkpoint_interval() == 7
        conf2 = EngineConf(group_size=7, checkpoint_interval_batches=3)
        assert conf2.effective_checkpoint_interval() == 3


class TestTracingConf:
    def test_defaults_off(self):
        conf = EngineConf()
        conf.validate()
        assert conf.tracing.enabled is False

    def test_invalid_max_events_rejected(self):
        with pytest.raises(ConfigError):
            EngineConf(tracing=TracingConf(enabled=True, max_events=0)).validate()

    def test_enabled_conf_valid(self):
        EngineConf(tracing=TracingConf(enabled=True, max_events=100)).validate()


class TestTunerConf:
    def test_defaults_valid(self):
        TunerConf().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"overhead_lower_bound": 0.5, "overhead_upper_bound": 0.2},
            {"overhead_lower_bound": -0.1},
            {"overhead_upper_bound": 1.5},
            {"increase_factor": 1.0},
            {"decrease_step": 0},
            {"min_group_size": 0},
            {"min_group_size": 10, "max_group_size": 5},
            {"ewma_alpha": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            TunerConf(**kwargs).validate()
