"""Tests for the chaos soak runner and its CLI.

The fast configurations here (inproc transport, thread executor, few
batches) keep the runs in the tier-1 budget; the CI ``test-chaos`` job
runs the real tcp+process matrix.
"""

import json

from repro.chaos import soak
from repro.chaos.soak import SoakSettings, main, run_soak


def fast_settings(**kwargs):
    defaults = dict(
        workload="wordcount",
        profile="mixed",
        transport="inproc",
        executor="thread",
        workers=3,
        batches=3,
        group_size=3,
        stage_timeout_s=30.0,
    )
    defaults.update(kwargs)
    return SoakSettings(**defaults)


class TestRunSoak:
    def test_seeded_runs_match_baseline(self, tmp_path):
        summary = run_soak(
            fast_settings(), seeds=2, out_dir=str(tmp_path), echo=lambda _: None
        )
        assert summary["ok"] is True
        assert len(summary["results"]) == 2
        for result in summary["results"]:
            assert result["ok"] is True
            # The acceptance bar: every armed run injected something.
            assert result["injected"] >= 1
            assert result["fault_log"]
        written = json.loads((tmp_path / "soak-summary.json").read_text())
        assert written["ok"] is True

    def test_streaming_workload(self):
        summary = run_soak(
            fast_settings(workload="streaming", profile="streaming", batches=4),
            seeds=1,
            echo=lambda _: None,
        )
        assert summary["ok"] is True
        assert summary["results"][0]["injected"] >= 1

    def test_mismatch_dumps_seed_and_fault_log(self, tmp_path, monkeypatch):
        # A workload whose chaos runs disagree with the baseline must fail
        # the soak and leave a reproducible failure file behind.
        def lying_workload(conf, batches):
            if conf.chaos.enabled:
                return [["wrong"]], 1, ["worker_kill @ worker.task hit 1"]
            return [["right"]], 0, []

        monkeypatch.setitem(soak.WORKLOADS, "lying", lying_workload)
        lines = []
        summary = run_soak(
            fast_settings(workload="lying"),
            seeds=1,
            seed_base=5,
            out_dir=str(tmp_path),
            echo=lines.append,
        )
        assert summary["ok"] is False
        assert summary["results"][0]["mismatch"] is True
        failure = json.loads((tmp_path / "soak-failure-seed-5.json").read_text())
        assert failure["seed"] == 5
        assert failure["expected"] == [["right"]]
        assert failure["got"] == [["wrong"]]
        assert failure["fault_log"]
        assert failure["plan"]
        # The printed repro command pins the failing seed.
        assert any("--seed-base 5" in line for line in lines)

    def test_driver_workload_survives_driver_kills(self, tmp_path):
        """The ISSUE 10 acceptance loop in miniature: the driver profile
        kills the driver at journaled transition points and the workload
        recovers from the WAL to the chaos-free baseline."""
        summary = run_soak(
            fast_settings(workload="driver", profile="driver", batches=4),
            seeds=1,
            out_dir=str(tmp_path),
            echo=lambda _: None,
        )
        assert summary["ok"] is True
        result = summary["results"][0]
        assert result["injected"] >= 1
        assert any("driver_kill" in line for line in result["fault_log"])

    def test_keep_going_attempts_every_seed(self, tmp_path, monkeypatch):
        """Default is fail-fast (first mismatch stops the run); with
        keep_going the soak attempts every seed and still reports failure."""

        def lying_workload(conf, batches):
            if conf.chaos.enabled:
                return [["wrong"]], 1, ["worker_kill @ worker.task hit 1"]
            return [["right"]], 0, []

        monkeypatch.setitem(soak.WORKLOADS, "lying", lying_workload)
        fast = run_soak(
            fast_settings(workload="lying"),
            seeds=3,
            out_dir=str(tmp_path / "fast"),
            echo=lambda _: None,
        )
        assert fast["ok"] is False
        assert fast["attempted"] == 1  # stopped at the first failure
        thorough = run_soak(
            fast_settings(workload="lying"),
            seeds=3,
            out_dir=str(tmp_path / "all"),
            echo=lambda _: None,
            keep_going=True,
        )
        assert thorough["ok"] is False
        assert thorough["attempted"] == 3
        assert thorough["keep_going"] is True
        assert thorough["wall_time_s"] >= 0
        for result in thorough["results"]:
            assert result["duration_s"] >= 0

    def test_zero_injected_faults_is_a_failure(self, monkeypatch):
        # Matching output is not enough: an armed run that injected
        # nothing proves nothing, and the soak must say so.
        def quiet_workload(conf, batches):
            return [["same"]], 0, []

        monkeypatch.setitem(soak.WORKLOADS, "quiet", quiet_workload)
        summary = run_soak(
            fast_settings(workload="quiet"), seeds=1, echo=lambda _: None
        )
        assert summary["ok"] is False


class TestCli:
    def test_soak_subcommand(self, tmp_path, capsys):
        rc = main(
            [
                "soak",
                "--seeds",
                "1",
                "--transport",
                "inproc",
                "--executor",
                "thread",
                "--batches",
                "2",
                "--out",
                str(tmp_path),
            ]
        )
        assert rc == 0
        assert (tmp_path / "soak-summary.json").exists()
        assert "1/1 seed(s) passed" in capsys.readouterr().out

    def test_plan_subcommand(self, capsys):
        assert main(["plan", "--seed", "3", "--profile", "storage"]) == 0
        out = capsys.readouterr().out
        assert "FaultPlan(seed=3" in out
        assert "block_delete" in out

    def test_profiles_subcommand(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        for profile in ("net", "workers", "storage", "streaming", "mixed", "driver"):
            assert profile in out
