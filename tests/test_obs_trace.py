"""Unit tests for the tracing core (`repro.obs.trace`) and the new metric
types: span lifecycle, context propagation primitives, the no-op disabled
path, bounded retention, and thread safety of concurrent recorder /
histogram writes."""

import threading

import pytest

from repro.common.clock import ManualClock
from repro.common.metrics import Gauge, Histogram, MetricsRegistry
from repro.obs.names import (
    EVENT_TUNER_DECISION,
    PHASE_SPANS,
    SPAN_BATCH,
    SPAN_NAMES,
    SPAN_TASK_COMPUTE,
    SPAN_TO_METRIC,
)
from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    SpanContext,
    TraceRecorder,
)


class TestSpanLifecycle:
    def test_root_span_records_on_end(self):
        clock = ManualClock()
        rec = TraceRecorder(clock=clock)
        span = rec.start_span(SPAN_BATCH, root=True, job_id=7)
        clock.advance(2.5)
        span.end()
        (event,) = rec.events()
        assert event["name"] == SPAN_BATCH
        assert event["ph"] == "X"
        assert event["dur"] == pytest.approx(2.5)
        assert event["parent_id"] is None
        assert event["attrs"] == {"job_id": 7}

    def test_end_is_idempotent(self):
        rec = TraceRecorder(clock=ManualClock())
        span = rec.start_span("stage")
        span.end()
        span.end()
        assert len(rec.events()) == 1

    def test_explicit_end_timestamp(self):
        rec = TraceRecorder(clock=ManualClock())
        ctx = rec.record_span(SPAN_TASK_COMPUTE, 10.0, 12.0, actor="worker-0")
        assert isinstance(ctx, SpanContext)
        (event,) = rec.events()
        assert event["ts"] == 10.0
        assert event["dur"] == pytest.approx(2.0)
        assert event["actor"] == "worker-0"

    def test_context_manager_nesting_sets_parent(self):
        rec = TraceRecorder(clock=ManualClock())
        with rec.start_span("batch", root=True) as outer:
            with rec.start_span("stage") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        events = {e["name"]: e for e in rec.events()}
        assert events["stage"]["parent_id"] == events["batch"]["span_id"]

    def test_root_ignores_current_context(self):
        rec = TraceRecorder(clock=ManualClock())
        with rec.start_span("group", root=True) as group:
            batch = rec.start_span("batch", root=True)
            assert batch.parent_id is None
            assert batch.trace_id != group.trace_id
            batch.end()

    def test_exception_annotates_error(self):
        rec = TraceRecorder(clock=ManualClock())
        with pytest.raises(ValueError):
            with rec.start_span("stage"):
                raise ValueError("boom")
        (event,) = rec.events()
        assert "boom" in event["attrs"]["error"]

    def test_annotations_survive_until_end(self):
        rec = TraceRecorder(clock=ManualClock())
        span = rec.start_span("group", root=True)
        span.annotate(wall_s=1.25)
        span.end()
        (event,) = rec.events()
        assert event["attrs"]["wall_s"] == 1.25

    def test_instant_event(self):
        rec = TraceRecorder(clock=ManualClock())
        with rec.start_span("group", root=True) as group:
            rec.instant(EVENT_TUNER_DECISION, action="increase")
        instants = [e for e in rec.events() if e["ph"] == "i"]
        (event,) = instants
        assert event["parent_id"] == group.span_id
        assert event["attrs"] == {"action": "increase"}


class TestContextPropagation:
    def test_activate_reestablishes_remote_context(self):
        rec = TraceRecorder(clock=ManualClock())
        ctx = SpanContext("t99", 42)
        with rec.activate(ctx):
            child = rec.start_span("task.compute", actor="worker-1")
            assert child.trace_id == "t99"
            assert child.parent_id == 42
            child.end()
        assert rec.current() is None

    def test_activate_none_is_noop(self):
        rec = TraceRecorder(clock=ManualClock())
        with rec.activate(None):
            assert rec.current() is None

    def test_parent_accepts_span_or_context(self):
        rec = TraceRecorder(clock=ManualClock())
        parent = rec.start_span("batch", root=True)
        via_span = rec.start_span("stage", parent=parent)
        via_ctx = rec.start_span("stage", parent=parent.context)
        assert via_span.parent_id == via_ctx.parent_id == parent.span_id


class TestDisabledPath:
    def test_null_recorder_is_shared_and_inert(self):
        assert NULL_RECORDER.enabled is False
        span = NULL_RECORDER.start_span("batch", root=True)
        with span:
            span.annotate(x=1)
        assert span.context is None
        assert NULL_RECORDER.record_span("s", 0.0, 1.0) is None
        NULL_RECORDER.instant("e")
        assert NULL_RECORDER.events() == []
        assert NULL_RECORDER.current() is None
        with NULL_RECORDER.activate(SpanContext("t1", 1)):
            pass

    def test_null_span_is_singleton(self):
        a = NULL_RECORDER.start_span("a")
        b = NullRecorder().start_span("b")
        assert a is b

    def test_empty_recorder_is_truthy(self):
        # TraceRecorder defines __len__; a fresh (empty) recorder must not
        # be falsy or ``tracer or NULL_RECORDER`` wiring silently disables
        # tracing.
        rec = TraceRecorder(clock=ManualClock())
        assert len(rec) == 0
        assert bool(rec)


class TestBoundedRetention:
    def test_overflow_counted_not_kept(self):
        rec = TraceRecorder(clock=ManualClock(), max_events=3)
        for i in range(5):
            rec.instant(f"e{i}")
        assert len(rec) == 3
        assert rec.dropped == 2
        rec.reset()
        assert len(rec) == 0
        assert rec.dropped == 0

    def test_max_events_validated(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_events=0)


class TestNames:
    def test_phase_spans_are_known_span_names(self):
        assert set(PHASE_SPANS) <= SPAN_NAMES

    def test_span_to_metric_keys_are_phases(self):
        assert set(SPAN_TO_METRIC) <= set(PHASE_SPANS)


class TestThreadSafety:
    def test_concurrent_span_recording_loses_nothing(self):
        """The satellite contract: concurrent TraceRecorder writes from
        many threads produce no lost or torn events and no duplicate span
        ids."""
        rec = TraceRecorder()
        threads_n, spans_each = 8, 200
        start = threading.Barrier(threads_n)

        def worker(tid: int) -> None:
            start.wait()
            for i in range(spans_each):
                with rec.start_span("batch", root=True, actor=f"w{tid}", i=i):
                    rec.instant("mark", actor=f"w{tid}")

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        events = rec.events()
        assert len(events) == threads_n * spans_each * 2
        span_ids = [e["span_id"] for e in events]
        assert len(span_ids) == len(set(span_ids))
        # Torn events would miss keys or mix actors within a trace.
        for e in events:
            assert {"name", "trace_id", "span_id", "actor", "ts", "dur", "attrs"} <= set(e)
        per_actor = {}
        for e in events:
            if e["ph"] == "X":
                per_actor[e["actor"]] = per_actor.get(e["actor"], 0) + 1
        assert all(v == spans_each for v in per_actor.values())

    def test_thread_local_context_stacks_are_independent(self):
        rec = TraceRecorder()
        seen = {}
        gate = threading.Barrier(2)

        def worker(name: str) -> None:
            with rec.start_span("batch", root=True, actor=name) as span:
                gate.wait()  # both threads hold their own current context
                seen[name] = (rec.current(), span.context)
                gate.wait()

        threads = [threading.Thread(target=worker, args=(n,)) for n in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen["a"][0] == seen["a"][1]
        assert seen["b"][0] == seen["b"][1]
        assert seen["a"][0] != seen["b"][0]

    def test_concurrent_histogram_records_lose_nothing(self):
        hist = Histogram("h")
        threads_n, each = 8, 500

        def worker() -> None:
            for i in range(each):
                hist.record(float(i))

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(hist) == threads_n * each
        assert hist.summary()["count"] == threads_n * each

    def test_concurrent_gauge_adds(self):
        gauge = Gauge("g")
        threads_n, each = 8, 500

        def worker() -> None:
            for _ in range(each):
                gauge.add(1.0)

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert gauge.value == threads_n * each

    def test_concurrent_registry_access(self):
        registry = MetricsRegistry()

        def worker() -> None:
            for i in range(300):
                registry.counter("c").add(1)
                registry.histogram("h").record(i)
                registry.gauge("g").set(i)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 1800
        assert snap["histograms"]["h"]["count"] == 1800
