"""End-to-end streaming tests: the job generator, group submission,
checkpointing, and exactly-once recovery (§3.3, §4)."""

import pytest

from repro.common.config import EngineConf, SchedulingMode, TunerConf
from repro.common.errors import StreamingError
from repro.engine.cluster import LocalCluster
from repro.streaming.context import StreamingContext
from repro.streaming.sinks import AppendSink, IdempotentSink
from repro.streaming.sources import FixedBatchSource, LogSource, RecordLog

WORDS = ["a", "b", "c", "a", "b", "a"]


def word_batches(num_batches, n=30):
    return [
        [WORDS[(b + i) % len(WORDS)] for i in range(n)] for b in range(num_batches)
    ]


def expected_counts(batches):
    out = {}
    for batch in batches:
        for w in batch:
            out[w] = out.get(w, 0) + 1
    return out


def make_conf(mode=SchedulingMode.DRIZZLE, group_size=3, workers=3,
              checkpoint_interval_batches=0, tuner=None):
    return EngineConf(
        num_workers=workers,
        slots_per_worker=2,
        scheduling_mode=mode,
        group_size=group_size,
        checkpoint_interval_batches=checkpoint_interval_batches,
        tuner=tuner or TunerConf(),
    )


def make_fixed_ctx(batches, num_partitions=4, **conf_kwargs):
    cluster = LocalCluster(make_conf(**conf_kwargs))
    source = FixedBatchSource(batches, num_partitions)
    ctx = StreamingContext(cluster, source, batch_interval_s=0.05)
    return cluster, ctx


class TestBatchLoop:
    def test_word_count_state(self):
        batches = word_batches(6)
        cluster, ctx = make_fixed_ctx(batches)
        with cluster:
            store = ctx.state_store("counts")
            stream = ctx.stream().map(lambda w: (w, 1)).reduce_by_key(lambda a, b: a + b, 3)
            stream.update_state(store, merge=lambda a, b: a + b)
            ctx.run_batches(6)
            assert dict(store.items()) == expected_counts(batches)
            assert ctx.next_batch == 6

    @pytest.mark.parametrize("mode", [SchedulingMode.PER_BATCH, SchedulingMode.DRIZZLE])
    def test_same_results_in_both_modes(self, mode):
        batches = word_batches(4)
        cluster, ctx = make_fixed_ctx(batches, mode=mode)
        with cluster:
            store = ctx.state_store("counts")
            ctx.stream().map(lambda w: (w, 1)).reduce_by_key(
                lambda a, b: a + b, 3
            ).update_state(store, merge=lambda a, b: a + b)
            ctx.run_batches(4)
            assert dict(store.items()) == expected_counts(batches)

    def test_requires_output_op(self):
        cluster, ctx = make_fixed_ctx(word_batches(1))
        with cluster:
            with pytest.raises(StreamingError):
                ctx.run_batches(1)

    def test_negative_batches_rejected(self):
        cluster, ctx = make_fixed_ctx(word_batches(1))
        with cluster:
            ctx.stream().foreach_batch(lambda b, r: None)
            with pytest.raises(StreamingError):
                ctx.run_batches(-1)

    def test_batches_processed_in_groups(self):
        cluster, ctx = make_fixed_ctx(word_batches(8, n=4), group_size=4)
        with cluster:
            ctx.stream().foreach_batch(lambda b, r: None)
            ctx.run_batches(8)
            group_sizes = {s.group_size for s in ctx.batch_stats}
            assert group_sizes == {4}
            assert len({s.group_id for s in ctx.batch_stats}) == 2

    def test_final_partial_group(self):
        cluster, ctx = make_fixed_ctx(word_batches(5, n=2), group_size=3)
        with cluster:
            ctx.stream().foreach_batch(lambda b, r: None)
            ctx.run_batches(5)
            sizes = [s.group_size for s in ctx.batch_stats]
            assert sizes == [3, 3, 3, 2, 2]

    def test_callbacks_delivered_in_batch_order(self):
        cluster, ctx = make_fixed_ctx(word_batches(5, n=2), group_size=5)
        with cluster:
            order = []
            ctx.stream().foreach_batch(lambda b, r: order.append(b))
            ctx.run_batches(5)
            assert order == [0, 1, 2, 3, 4]

    def test_multiple_output_ops(self):
        batches = word_batches(4, n=12)
        cluster, ctx = make_fixed_ctx(batches, group_size=2)
        with cluster:
            counts = ctx.state_store("counts")
            lengths = []
            keyed = ctx.stream().map(lambda w: (w, 1)).reduce_by_key(lambda a, b: a + b, 2)
            keyed.update_state(counts, merge=lambda a, b: a + b)
            ctx.stream().foreach_batch(lambda b, records: lengths.append(len(records)))
            ctx.run_batches(4)
            assert dict(counts.items()) == expected_counts(batches)
            assert lengths == [12, 12, 12, 12]

    def test_sink_receives_batches(self):
        cluster, ctx = make_fixed_ctx(word_batches(3))
        with cluster:
            sink = IdempotentSink()
            ctx.stream().map(lambda w: (w, 1)).reduce_by_key(
                lambda a, b: a + b, 2
            ).sink_to(sink)
            ctx.run_batches(3)
            assert sink.committed_batches() == [0, 1, 2]

    def test_log_source_consumes_appended_data(self):
        """With a live RecordLog, each group consumes what arrived since
        the previous group (Kafka-direct-style)."""
        cluster = LocalCluster(make_conf(group_size=3))
        log = RecordLog(4)
        ctx = StreamingContext(cluster, LogSource(log), batch_interval_s=0.05)
        with cluster:
            store = ctx.state_store("counts")
            ctx.stream().map(lambda w: (w, 1)).reduce_by_key(
                lambda a, b: a + b, 3
            ).update_state(store, merge=lambda a, b: a + b)
            total = 0
            for round_index in range(3):
                log.append_round_robin([WORDS[i % 6] for i in range(30)])
                total += 30
                ctx.run_batches(3)
            assert sum(v for _k, v in store.items()) == total


class TestCheckpointingAndRecovery:
    def test_checkpoint_at_group_boundaries(self):
        cluster, ctx = make_fixed_ctx(word_batches(6, n=3), group_size=3)
        with cluster:
            ctx.stream().foreach_batch(lambda b, r: None)
            ctx.run_batches(6)
            assert len(ctx.checkpoints) == 2
            assert ctx.checkpoints.latest().batch_index == 5

    def test_explicit_checkpoint_interval(self):
        cluster, ctx = make_fixed_ctx(
            word_batches(8, n=2), group_size=2, checkpoint_interval_batches=4
        )
        with cluster:
            ctx.stream().foreach_batch(lambda b, r: None)
            ctx.run_batches(8)
            assert len(ctx.checkpoints) == 2

    def test_restore_and_replay_exactly_once(self):
        """State loss + replay: state and sink output must be identical to
        the uninterrupted run (prefix integrity / exactly-once)."""
        batches = word_batches(9)
        cluster, ctx = make_fixed_ctx(
            batches, group_size=3, checkpoint_interval_batches=6
        )
        with cluster:
            store = ctx.state_store("counts")
            sink = IdempotentSink()
            stream = ctx.stream().map(lambda w: (w, 1)).reduce_by_key(lambda a, b: a + b, 3)
            stream.update_state(store, merge=lambda a, b: a + b)
            stream.sink_to(sink)
            ctx.run_batches(9)
            baseline_state = dict(store.items())
            baseline_sink = sink.all_records()
            assert baseline_state == expected_counts(batches)
            # Simulate losing in-memory state: corrupt, then recover.
            store.restore({"corrupted": 999})
            replayed = ctx.restore_and_replay()
            assert replayed == 3  # batches 6..8 after the checkpoint at 5
            assert dict(store.items()) == baseline_state
            assert sink.all_records() == baseline_sink
            assert sink.duplicate_commits >= 3

    def test_append_sink_shows_duplicates_without_dedup(self):
        """Control experiment: a non-idempotent sink DOES see duplicates
        on replay — the dedup is what provides exactly-once."""
        cluster, ctx = make_fixed_ctx(
            word_batches(4, n=6), group_size=2, checkpoint_interval_batches=10
        )
        with cluster:
            store = ctx.state_store("counts")
            sink = AppendSink()
            stream = ctx.stream().map(lambda w: (w, 1)).reduce_by_key(lambda a, b: a + b, 2)
            stream.update_state(store, merge=lambda a, b: a + b)
            stream.sink_to(sink)
            ctx.run_batches(4)
            n = len(sink.all_records())
            ctx.restore_and_replay()  # no checkpoint yet -> replays all 4
            assert len(sink.all_records()) == 2 * n

    def test_replay_with_no_batches_is_noop(self):
        cluster, ctx = make_fixed_ctx(word_batches(2, n=2), group_size=2)
        with cluster:
            ctx.stream().foreach_batch(lambda b, r: None)
            ctx.run_batches(2)  # checkpoint lands exactly at batch 1
            assert ctx.restore_and_replay() == 0

    def test_log_source_replay_reads_identical_data(self):
        """Replay through a LIVE log (new data arriving after the crash)
        must re-read exactly the original batch ranges."""
        cluster = LocalCluster(make_conf(group_size=2, checkpoint_interval_batches=10))
        log = RecordLog(2)
        ctx = StreamingContext(cluster, LogSource(log), batch_interval_s=0.05)
        with cluster:
            store = ctx.state_store("counts")
            ctx.stream().map(lambda w: (w, 1)).reduce_by_key(
                lambda a, b: a + b, 2
            ).update_state(store, merge=lambda a, b: a + b)
            log.append_round_robin(["x"] * 10)
            ctx.run_batches(2)
            baseline = dict(store.items())
            # New data arrives AFTER the failure point...
            log.append_round_robin(["y"] * 10)
            store.restore({})
            ctx.restore_and_replay()
            # ...and must NOT leak into the replayed batches.
            assert dict(store.items()) == baseline

    def test_mid_stream_worker_failure_exactly_once(self):
        """Kill a machine while batches are flowing: engine-level recovery
        plus deterministic replay keep results exactly right."""
        import threading

        batches = word_batches(6)
        cluster, ctx = make_fixed_ctx(batches, group_size=3, workers=4)
        with cluster:
            store = ctx.state_store("counts")
            stream = ctx.stream().map(lambda w: (w, 1)).reduce_by_key(lambda a, b: a + b, 3)
            stream.update_state(store, merge=lambda a, b: a + b)
            killer = threading.Timer(0.02, lambda: cluster.kill_worker("worker-1"))
            killer.start()
            ctx.run_batches(6)
            assert dict(store.items()) == expected_counts(batches)


class TestTunerIntegration:
    def test_tuner_drives_group_size(self):
        tuner_conf = TunerConf(
            enabled=True,
            overhead_lower_bound=0.0001,
            overhead_upper_bound=0.001,
            max_group_size=8,
        )
        cluster, ctx = make_fixed_ctx(
            word_batches(20, n=2), group_size=1, tuner=tuner_conf
        )
        with cluster:
            ctx.stream().foreach_batch(lambda b, r: None)
            ctx.run_batches(20)
            # Coordination dominates these tiny batches, so the AIMD tuner
            # must have grown the group size.
            sizes = [s.group_size for s in ctx.batch_stats]
            assert max(sizes) > 1
            assert cluster.driver.tuner is not None
            assert len(cluster.driver.tuner.history) >= 2
