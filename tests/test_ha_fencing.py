"""Session-epoch fencing (repro.ha): zombie drivers cannot mutate workers.

A driver believed dead whose restart already claimed a newer epoch may
still be running (network partition, GC pause).  Every mutating driver →
worker message carries the session epoch when HA is on; workers adopt the
highest epoch seen and refuse anything lower.  Sink commits are fenced the
same way.  Workers whose driver is down *park* completed reports with a
bounded jittered retry instead of discarding them.
"""

import pytest

from repro.common.config import EngineConf
from repro.common.errors import StaleDriverEpoch
from repro.common.metrics import (
    COUNT_HA_FENCED,
    COUNT_HA_PARKED_REPORTS,
    MetricsRegistry,
)
from repro.engine.rpc import Transport
from repro.engine.task import TaskId, TaskReport
from repro.engine.worker import Worker
from repro.streaming.sinks import EpochFencedSink


@pytest.fixture
def worker():
    conf = EngineConf(num_workers=1)
    conf.monitor.enable_heartbeats = False
    metrics = MetricsRegistry()
    transport = Transport(metrics)
    w = Worker("w0", transport, conf, metrics)
    w.start()
    yield w
    w.shutdown()


class TestWorkerFencing:
    def test_adopts_higher_epochs_monotonically(self, worker):
        worker.launch_tasks([], driver_epoch=1)
        worker.launch_tasks([], driver_epoch=3)
        worker.launch_tasks([], driver_epoch=3)  # same epoch still fine
        assert worker._adopted_epoch == 3

    def test_stale_epoch_refused_on_every_mutating_rpc(self, worker):
        worker.launch_tasks([], driver_epoch=2)
        with pytest.raises(StaleDriverEpoch):
            worker.launch_tasks([], driver_epoch=1)
        with pytest.raises(StaleDriverEpoch):
            worker.pre_populate(0, [], driver_epoch=1)
        with pytest.raises(StaleDriverEpoch):
            worker.cancel_job(0, driver_epoch=1)
        with pytest.raises(StaleDriverEpoch):
            worker.drop_job(0, driver_epoch=1)
        with pytest.raises(StaleDriverEpoch):
            worker.instantiate_template("t", [0], 0, driver_epoch=1)
        assert worker.metrics.counter(COUNT_HA_FENCED).value == 5
        # The zombie's refusals never lowered the adopted epoch.
        assert worker._adopted_epoch == 2

    def test_unstamped_messages_always_pass(self, worker):
        """HA off: no stamps arrive and nothing is fenced — the non-HA
        message flow is byte-identical to before."""
        worker.launch_tasks([], driver_epoch=2)
        worker.launch_tasks([])  # plumbing / non-HA caller
        worker.cancel_job(0)
        assert worker.metrics.counter(COUNT_HA_FENCED).value == 0

    def test_stale_epoch_surfaces_across_the_wire(self):
        """Over tcp the refusal must reach the caller as the typed error,
        not a hang or a generic failure."""
        from repro.net.transport import TcpTransport

        hub = TcpTransport(MetricsRegistry(), name="hub")
        peer = TcpTransport(
            MetricsRegistry(), hub_addr=hub.address, name="peer"
        )
        try:
            conf = EngineConf(num_workers=1)
            conf.monitor.enable_heartbeats = False
            w = Worker("w0", peer, conf, MetricsRegistry())
            w.start()
            hub.call("w0", "launch_tasks", [], **{"driver_epoch": 5})
            with pytest.raises(StaleDriverEpoch):
                hub.call("w0", "launch_tasks", [], **{"driver_epoch": 4})
            w.shutdown()
        finally:
            peer.close()
            hub.close()


class TestReportParking:
    def test_report_to_dead_driver_is_parked_not_discarded(self, worker):
        """No driver registered: delivery fails, the report parks, and the
        parked-report counter ticks.  The retry window is bounded — this
        call must return, not wedge the executor thread."""
        report = TaskReport(
            task_id=TaskId(job_id=0, stage_index=0, partition=0),
            worker_id="w0",
            succeeded=True,
            result=[1],
        )
        worker._send_report(report)
        assert worker.metrics.counter(COUNT_HA_PARKED_REPORTS).value == 1

    def test_parked_report_delivered_when_driver_returns(self, worker):
        """A driver that comes back inside the retry window receives the
        parked report — completed work survives a short driver outage."""
        import threading

        taken = []

        class LateDriver:
            def task_finished(self, report):
                taken.append(report)

        def register_late():
            worker.transport.register("driver", LateDriver())

        timer = threading.Timer(0.15, register_late)
        timer.start()
        report = TaskReport(
            task_id=TaskId(job_id=0, stage_index=0, partition=0),
            worker_id="w0",
            succeeded=True,
            result=[1],
        )
        try:
            worker._send_report(report)
        finally:
            timer.cancel()
        assert len(taken) == 1
        assert worker.metrics.counter(COUNT_HA_PARKED_REPORTS).value == 1


class TestEpochFencedSink:
    def test_stale_epoch_commit_refused(self):
        sink = EpochFencedSink()
        assert sink.commit(0, ["x"], epoch=2) is True
        assert sink.commit(1, ["zombie"], epoch=1) is False
        assert sink.fenced_commits == 1
        assert sink.committed_batches() == [0]
        assert sink.commit(1, ["y"], epoch=2) is True

    def test_restored_ledger_makes_recommits_noops(self):
        sink = EpochFencedSink()
        sink.adopt_epoch(2)
        sink.restore_ledger([0, 1])
        assert sink.commit(0, ["replayed"], epoch=2) is False
        assert sink.duplicate_commits == 1
        assert sink.commit(2, ["new"], epoch=2) is True
        assert sink.committed_batches() == [0, 1, 2]

    def test_unstamped_commit_behaves_like_idempotent_sink(self):
        sink = EpochFencedSink()
        assert sink.commit(0, ["x"]) is True
        assert sink.commit(0, ["x"]) is False
        assert sink.duplicate_commits == 1
        assert sink.fenced_commits == 0
