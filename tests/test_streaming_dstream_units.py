"""Unit tests for the DStream graph layer (no engine execution: the
per-batch datasets are evaluated with the planner's reference executor)."""

import pytest

from repro.dag.plan import collect_action, compile_plan
from repro.streaming.dstream import SourceDStream
from repro.streaming.sources import FixedBatchSource

from test_dag_plan import run_plan_locally


class _StubContext:
    """Just enough of a StreamingContext for graph construction."""

    def __init__(self, batches, partitions=2):
        self.source = FixedBatchSource(batches, partitions)
        self.registered = []

    def register_output(self, stream, callback):
        self.registered.append((stream, callback))


def evaluate(stream, batch_index):
    plan = compile_plan(stream.dataset_for(batch_index), collect_action())
    return run_plan_locally(plan)


class TestDStreamGraph:
    def test_source_stream_reads_batch(self):
        ctx = _StubContext([[1, 2, 3], [4, 5]])
        stream = SourceDStream(ctx)
        assert sorted(evaluate(stream, 0)) == [1, 2, 3]
        assert sorted(evaluate(stream, 1)) == [4, 5]

    def test_map_filter_chain(self):
        ctx = _StubContext([[1, 2, 3, 4]])
        stream = SourceDStream(ctx).map(lambda x: x * 10).filter(lambda x: x > 15)
        assert sorted(evaluate(stream, 0)) == [20, 30, 40]

    def test_flat_map(self):
        ctx = _StubContext([["ab", "c"]])
        stream = SourceDStream(ctx).flat_map(list)
        assert sorted(evaluate(stream, 0)) == ["a", "b", "c"]

    def test_map_partitions(self):
        ctx = _StubContext([[1, 2, 3, 4]], partitions=2)
        stream = SourceDStream(ctx).map_partitions(lambda p, it: [sum(it)])
        assert sum(evaluate(stream, 0)) == 10

    def test_reduce_by_key_per_batch(self):
        ctx = _StubContext([[("a", 1), ("a", 2), ("b", 3)]])
        stream = SourceDStream(ctx).reduce_by_key(lambda a, b: a + b, 2)
        assert dict(evaluate(stream, 0)) == {"a": 3, "b": 3}

    def test_group_by_key_per_batch(self):
        ctx = _StubContext([[("a", 1), ("a", 2)]])
        stream = SourceDStream(ctx).group_by_key(1)
        out = dict(evaluate(stream, 0))
        assert sorted(out["a"]) == [1, 2]

    def test_partition_by(self):
        from repro.dag.partitioning import HashPartitioner

        ctx = _StubContext([[("a", 1), ("b", 2)]])
        stream = SourceDStream(ctx).partition_by(HashPartitioner(3))
        assert sorted(evaluate(stream, 0)) == [("a", 1), ("b", 2)]

    def test_transform_custom(self):
        ctx = _StubContext([[3, 1, 2]])
        stream = SourceDStream(ctx).transform(lambda ds: ds.map(lambda x: -x))
        assert sorted(evaluate(stream, 0)) == [-3, -2, -1]

    def test_batches_independent(self):
        """Each batch's dataset is built fresh — no cross-batch leakage."""
        ctx = _StubContext([[1], [2], [3]])
        stream = SourceDStream(ctx).map(lambda x: x * 100)
        assert [evaluate(stream, b) for b in range(3)] == [[100], [200], [300]]

    def test_output_registration(self):
        ctx = _StubContext([[1]])
        stream = SourceDStream(ctx)
        cb = lambda b, records: None
        stream.foreach_batch(cb)
        assert len(ctx.registered) == 1
        assert ctx.registered[0][0] is stream

    def test_sink_to_registers_commit(self):
        from repro.streaming.sinks import IdempotentSink

        ctx = _StubContext([[1]])
        sink = IdempotentSink()
        stream = SourceDStream(ctx)
        stream.sink_to(sink)
        _stream, callback = ctx.registered[0]
        callback(7, ["x"])
        assert sink.records_for(7) == ["x"]

    def test_update_state_registers_merge(self):
        from repro.streaming.state import StateStore

        ctx = _StubContext([[1]])
        store = StateStore("s")
        stream = SourceDStream(ctx)
        stream.update_state(store, merge=lambda a, b: a + b)
        _stream, callback = ctx.registered[0]
        callback(0, [("k", 2)])
        callback(1, [("k", 3)])
        assert store.get("k") == 5
