"""Tests for the micro-benchmark simulator (Figures 4 and 5)."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.costmodel import DEFAULT_COST_MODEL as COST
from repro.sim.microbench import (
    MicroBenchConfig,
    run_microbenchmark,
    weak_scaling_sweep,
)


class TestConfigValidation:
    def test_unknown_mode(self):
        with pytest.raises(SimulationError):
            MicroBenchConfig(mode="bogus", machines=4)

    def test_bad_machines(self):
        with pytest.raises(SimulationError):
            MicroBenchConfig(mode="spark", machines=0)

    def test_bad_group(self):
        with pytest.raises(SimulationError):
            MicroBenchConfig(mode="drizzle", machines=4, group_size=0)

    def test_tasks_per_stage(self):
        c = MicroBenchConfig(mode="spark", machines=4, num_reducers=16)
        assert c.tasks_per_stage == {0: 16, 1: 16}
        c2 = MicroBenchConfig(mode="spark", machines=4)
        assert c2.tasks_per_stage == {0: 16}


class TestModeOrdering:
    @pytest.mark.parametrize("machines", [4, 32, 128])
    def test_drizzle_fastest_spark_slowest(self, machines):
        spark = run_microbenchmark(MicroBenchConfig(mode="spark", machines=machines))
        pre = run_microbenchmark(MicroBenchConfig(mode="only-pre", machines=machines))
        drizzle = run_microbenchmark(
            MicroBenchConfig(mode="drizzle", machines=machines, group_size=100)
        )
        assert drizzle.time_per_batch_s < pre.time_per_batch_s
        assert pre.time_per_batch_s <= spark.time_per_batch_s

    def test_larger_groups_amortize_more(self):
        times = [
            run_microbenchmark(
                MicroBenchConfig(mode="drizzle", machines=128, group_size=g)
            ).time_per_batch_s
            for g in (1, 25, 50, 100)
        ]
        assert times == sorted(times, reverse=True)

    def test_pipelined_is_max_of_exec_and_sched(self):
        # §3.6: b*max(t_exec, t_sched). With heavy compute, pipelining
        # hides scheduling entirely; with light compute it behaves ~Spark.
        heavy = run_microbenchmark(
            MicroBenchConfig(mode="pipelined", machines=16, task_compute_s=0.2)
        )
        assert heavy.time_per_batch_s == pytest.approx(0.2, rel=0.05)
        light = run_microbenchmark(
            MicroBenchConfig(mode="pipelined", machines=128, task_compute_s=1e-4)
        )
        spark = run_microbenchmark(
            MicroBenchConfig(mode="spark", machines=128, task_compute_s=1e-4)
        )
        assert light.time_per_batch_s > 0.8 * spark.time_per_batch_s

    def test_pipelined_insufficient_at_scale(self):
        """The paper's reason for rejecting pipelining: at large clusters
        t_sched > t_exec, so pipelining cannot approach Drizzle."""
        pipelined = run_microbenchmark(
            MicroBenchConfig(mode="pipelined", machines=128)
        )
        drizzle = run_microbenchmark(
            MicroBenchConfig(mode="drizzle", machines=128, group_size=100)
        )
        assert pipelined.time_per_batch_s > 10 * drizzle.time_per_batch_s


class TestComputeScaling:
    def test_heavy_compute_shrinks_relative_benefit(self):
        """Fig. 5(a): with 100x data, group size 25 captures most of the
        benefit — larger groups barely help."""
        heavy = 90e-3
        g25 = run_microbenchmark(
            MicroBenchConfig(mode="drizzle", machines=128, group_size=25,
                             task_compute_s=heavy)
        ).time_per_batch_s
        g100 = run_microbenchmark(
            MicroBenchConfig(mode="drizzle", machines=128, group_size=100,
                             task_compute_s=heavy)
        ).time_per_batch_s
        assert (g25 - g100) / g100 < 0.10  # diminishing returns

    def test_light_compute_keeps_group_size_relevant(self):
        g25 = run_microbenchmark(
            MicroBenchConfig(mode="drizzle", machines=128, group_size=25)
        ).time_per_batch_s
        g100 = run_microbenchmark(
            MicroBenchConfig(mode="drizzle", machines=128, group_size=100)
        ).time_per_batch_s
        assert (g25 - g100) / g100 > 0.3


class TestBreakdown:
    def test_breakdown_sums_to_coordination(self):
        r = run_microbenchmark(MicroBenchConfig(mode="spark", machines=128))
        n = 512
        coord = (r.scheduler_delay_per_task_s + r.task_transfer_per_task_s) * n
        assert coord == pytest.approx(
            COST.spark_batch_coordination(128, {0: 512}), rel=0.01
        )

    def test_drizzle_breakdown_much_smaller(self):
        spark = run_microbenchmark(MicroBenchConfig(mode="spark", machines=128))
        drizzle = run_microbenchmark(
            MicroBenchConfig(mode="drizzle", machines=128, group_size=100)
        )
        assert drizzle.scheduler_delay_per_task_s < spark.scheduler_delay_per_task_s / 5
        assert drizzle.task_transfer_per_task_s < spark.task_transfer_per_task_s / 5
        assert drizzle.compute_per_task_s == spark.compute_per_task_s

    def test_trials_bracket_the_mean(self):
        r = run_microbenchmark(MicroBenchConfig(mode="spark", machines=16), trials=50)
        assert r.trial_p5_s <= r.trial_median_s <= r.trial_p95_s
        assert r.trial_p5_s <= r.time_per_batch_s * 1.2


class TestWeakScalingSweep:
    def test_sweep_shape(self):
        sweep = weak_scaling_sweep("spark", [4, 16, 64])
        assert sorted(sweep) == [4, 16, 64]
        times = [sweep[m].time_per_batch_s for m in (4, 16, 64)]
        assert times == sorted(times)  # coordination grows with cluster

    def test_sweep_with_shuffle(self):
        sweep = weak_scaling_sweep("drizzle", [4, 128], group_size=100, num_reducers=16)
        assert sweep[128].time_per_batch_s > sweep[4].time_per_batch_s
