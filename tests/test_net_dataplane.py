"""Data-plane fast-path tests: v2 framing & compression, batched
``fetch_buckets`` with per-map-output partial failure, BlockStore
accounting, content-addressed stage-blob caching (including the
``stage_miss`` reship recovery path), and stale-address invalidation on
worker re-announce."""

import socket
import threading
import zlib

import pytest

from repro.common.config import (
    DataPlaneConf,
    EngineConf,
    SchedulingMode,
    TransportConf,
)
from repro.common.errors import ConfigError, FetchFailed, WorkerLost
from repro.common.metrics import (
    COUNT_NET_BYTES_SAVED_COMPRESSION,
    COUNT_NET_FETCH_BATCHES,
    COUNT_RPC_MESSAGES,
    COUNT_STAGE_CACHE_HIT,
    COUNT_STAGE_CACHE_MISS,
    HIST_NET_BUCKETS_PER_FETCH,
    MetricsRegistry,
)
from repro.dag.dataset import parallelize
from repro.dag.plan import collect_action, compile_plan
from repro.engine.blocks import BUCKET_MISSING, BUCKET_OK, BlockStore
from repro.engine.rpc import Transport
from repro.engine.task import TaskDescriptor, TaskId
from repro.engine.worker import Worker
from repro.net import FrameError, TcpTransport, encode_frame, read_frame
from repro.net.framing import (
    FLAG_ZLIB,
    HEADER,
    KIND_REQUEST,
    KIND_RESPONSE,
    MAGIC,
    VERSION,
    compress_payload,
    read_frame_ex,
)
from repro.net.stageblobs import (
    StageBlobReceiver,
    StageBlobSender,
    WireLaunch,
    blob_digest,
)

from engine_test_utils import make_cluster
from test_engine_worker import _FakeDriver, wait_for


# ----------------------------------------------------------------------
# Framing v2: flags byte + zlib compression
# ----------------------------------------------------------------------
class TestFramingFlags:
    def _exchange(self, frame: bytes):
        a, b = socket.socketpair()
        try:
            a.sendall(frame)
            return read_frame_ex(b)
        finally:
            a.close()
            b.close()

    def test_flags_zero_is_bit_identical_to_v1(self):
        payload = b"legacy peers must not notice"
        assert encode_frame(KIND_REQUEST, payload) == (
            HEADER.pack(MAGIC, VERSION, KIND_REQUEST, len(payload)) + payload
        )

    def test_compressed_roundtrip(self):
        payload = b"abc" * 2000
        wire, flags, saved = compress_payload(payload, mode="on")
        assert flags == FLAG_ZLIB and saved > 0 and len(wire) < len(payload)
        kind, got, got_flags, wire_len = self._exchange(
            encode_frame(KIND_RESPONSE, wire, flags)
        )
        assert (kind, got, got_flags) == (KIND_RESPONSE, payload, FLAG_ZLIB)
        assert wire_len == len(wire)  # byte counters see the wire size

    def test_plain_read_frame_inflates_transparently(self):
        payload = b"xyz" * 5000
        wire, flags, _saved = compress_payload(payload, mode="on")
        a, b = socket.socketpair()
        try:
            a.sendall(encode_frame(KIND_REQUEST, wire, flags))
            assert read_frame(b) == (KIND_REQUEST, payload)
        finally:
            a.close()
            b.close()

    def test_mixed_versions_on_one_connection(self):
        # Per-frame negotiation: a v1 frame followed by a v2 frame.
        payload = b"data" * 3000
        wire, flags, _ = compress_payload(payload, mode="on")
        a, b = socket.socketpair()
        try:
            a.sendall(encode_frame(KIND_REQUEST, b"plain"))
            a.sendall(encode_frame(KIND_REQUEST, wire, flags))
            assert read_frame(b) == (KIND_REQUEST, b"plain")
            assert read_frame(b) == (KIND_REQUEST, payload)
        finally:
            a.close()
            b.close()

    def test_unknown_flags_rejected_at_encode(self):
        with pytest.raises(FrameError, match="flags"):
            encode_frame(KIND_REQUEST, b"x", flags=0x80)

    def test_unknown_flags_rejected_at_decode(self):
        from repro.net.framing import HEADER_FLAGS, VERSION_FLAGS

        frame = HEADER_FLAGS.pack(MAGIC, VERSION_FLAGS, KIND_REQUEST, 0x40, 1) + b"x"
        with pytest.raises(FrameError, match="flags"):
            self._exchange(frame)

    def test_corrupt_compressed_payload_is_frame_error(self):
        garbage = b"definitely not zlib"
        frame = encode_frame(KIND_REQUEST, garbage, FLAG_ZLIB)
        with pytest.raises(FrameError, match="corrupt"):
            self._exchange(frame)

    def test_compress_modes(self):
        big = b"a" * 10000
        small = b"a" * 100
        # off: never.
        assert compress_payload(big, mode="off") == (big, 0, 0)
        # auto: only at/above threshold.
        assert compress_payload(small, mode="auto", threshold=4096)[1] == 0
        assert compress_payload(big, mode="auto", threshold=4096)[1] == FLAG_ZLIB
        # on: every payload worth shrinking.
        assert compress_payload(small, mode="on")[1] == FLAG_ZLIB

    def test_incompressible_payload_sent_plain(self):
        # zlib output of random-ish data does not shrink; the flag must
        # only appear when the receiver actually has to inflate.
        incompressible = zlib.compress(b"seed" * 600, 9)
        wire, flags, saved = compress_payload(incompressible, mode="on")
        assert (wire, flags, saved) == (incompressible, 0, 0)


class TestDataPlaneConf:
    def test_defaults_validate(self):
        DataPlaneConf().validate()
        TransportConf().data_plane.validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_concurrent_fetches": 0},
            {"compression": "lzma"},
            {"compress_threshold_bytes": -1},
            {"stage_blob_cache_entries": -1},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            DataPlaneConf(**kwargs).validate()

    def test_env_selects_compression(self, monkeypatch):
        monkeypatch.setenv("REPRO_NET_COMPRESSION", "on")
        assert DataPlaneConf().compression == "on"
        monkeypatch.setenv("REPRO_NET_COMPRESSION", "off")
        assert DataPlaneConf().compression == "off"


# ----------------------------------------------------------------------
# BlockStore accounting + batched reads
# ----------------------------------------------------------------------
class TestBlockStore:
    def test_drop_job_reclaims_records(self):
        store = BlockStore("w0")
        store.put_map_output(0, 10, 0, {0: [1, 2], 1: [3]})
        store.put_map_output(0, 10, 1, {0: [4]})
        store.put_map_output(1, 11, 0, {0: [5, 6, 7]})
        assert store.stored_records == 7
        assert store.drop_job(0) == 2
        assert store.stored_records == 3
        assert len(store) == 1

    def test_replacing_block_does_not_double_count(self):
        store = BlockStore("w0")
        store.put_map_output(0, 10, 0, {0: [1, 2, 3]})
        store.put_map_output(0, 10, 0, {0: [1]})  # speculative re-run
        assert store.stored_records == 1
        store.clear()
        assert store.stored_records == 0

    def test_bucket_sizes(self):
        store = BlockStore("w0")
        store.put_map_output(0, 10, 0, {0: [1, 2], 1: []})
        assert store.bucket_sizes(0, 10, 0) == {0: 2, 1: 0}
        assert store.bucket_sizes(0, 10, 9) is None

    def test_get_buckets_partial_results_in_request_order(self):
        store = BlockStore("w0")
        store.put_map_output(0, 10, 0, {0: [1], 1: [2]})
        replies = store.get_buckets(
            0, [(10, 0, 1), (10, 7, 0), (10, 0, 0), (10, 0, 5)]
        )
        assert replies == [
            (BUCKET_OK, [2]),
            (BUCKET_MISSING, None),  # absent block is data, not an exception
            (BUCKET_OK, [1]),
            (BUCKET_OK, []),  # present block, empty reduce partition
        ]

    def test_concurrent_put_and_get(self):
        store = BlockStore("w0")
        errors = []

        def writer(map_index):
            for _ in range(50):
                store.put_map_output(0, 10, map_index, {0: [map_index] * 4})

        def reader():
            for _ in range(200):
                replies = store.get_buckets(0, [(10, 0, 0), (10, 1, 0)])
                for status, bucket in replies:
                    if status == BUCKET_OK and len(bucket) != 4:
                        errors.append(bucket)
                _ = store.stored_records

        threads = [threading.Thread(target=writer, args=(i,)) for i in (0, 1)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert store.stored_records == 8


# ----------------------------------------------------------------------
# Batched fetches through the worker
# ----------------------------------------------------------------------
def _shuffle_fixture(num_workers, maps=2, reducers=1):
    """Workers on one inproc transport plus a reduce plan over ``maps``
    map outputs."""
    transport = Transport(MetricsRegistry())
    driver = _FakeDriver()
    transport.register("driver", driver)
    workers = []
    for i in range(num_workers):
        w = Worker(f"w{i}", transport, EngineConf(), MetricsRegistry())
        w.start()
        workers.append(w)
    data = [(chr(ord("a") + i), 1) for i in range(maps)]
    plan = compile_plan(
        parallelize(data, maps).reduce_by_key(lambda a, b: a + b, reducers),
        collect_action(),
    )
    shuffle_id = plan.stages[0].output_shuffle.shuffle_id
    return transport, driver, workers, plan, shuffle_id


def _reduce_descriptor(plan, shuffle_id, maps, locations):
    return TaskDescriptor(
        task_id=TaskId(0, 1, 0),
        plan=plan,
        pre_scheduled=False,
        deps=frozenset((shuffle_id, m) for m in range(maps)),
        map_locations={(shuffle_id, m): locations[m] for m in range(maps)},
    )


class TestBatchedFetch:
    def test_fetch_buckets_rpc_serves_batch(self):
        _, _, (w0,), _, _ = _shuffle_fixture(1)
        try:
            w0.blocks.put_map_output(0, 10, 0, {0: [1], 1: [2]})
            replies = w0.fetch_buckets(0, [(10, 0, 0), (10, 0, 1), (10, 3, 0)])
            assert replies == [
                (BUCKET_OK, [1]),
                (BUCKET_OK, [2]),
                (BUCKET_MISSING, None),
            ]
        finally:
            w0.shutdown()

    def test_fetch_buckets_on_dead_worker_raises(self):
        _, _, (w0,), _, _ = _shuffle_fixture(1)
        w0.kill()
        with pytest.raises(WorkerLost):
            w0.fetch_buckets(0, [(10, 0, 0)])
        w0.shutdown()

    def test_one_round_trip_per_peer(self):
        # 4 map outputs on 2 peers -> exactly 2 fetch_buckets batches of
        # 2 buckets each, not 4 sequential fetch_bucket calls.
        _, driver, workers, plan, sid = _shuffle_fixture(3, maps=4)
        w0, w1, w2 = workers
        try:
            for m, holder in enumerate([w1, w1, w2, w2]):
                buckets = {0: [(chr(ord("a") + m), 1)]}
                holder.blocks.put_map_output(0, sid, m, buckets)
            desc = _reduce_descriptor(
                plan, sid, 4, {0: "w1", 1: "w1", 2: "w2", 3: "w2"}
            )
            w0.launch_tasks([desc])
            assert wait_for(lambda: len(driver.reports) == 1)
            assert driver.reports[0].succeeded
            assert sorted(driver.reports[0].result) == [
                ("a", 1), ("b", 1), ("c", 1), ("d", 1),
            ]
            assert w0.metrics.counter(COUNT_NET_FETCH_BATCHES).value == 2
            assert w0.metrics.histogram(
                HIST_NET_BUCKETS_PER_FETCH
            ).snapshot() == [2.0, 2.0]
        finally:
            for w in workers:
                w.shutdown()

    def test_partial_failure_names_exactly_the_dead_peers_outputs(self):
        _, driver, workers, plan, sid = _shuffle_fixture(3, maps=2)
        w0, w1, w2 = workers
        try:
            w1.blocks.put_map_output(0, sid, 0, {0: [("a", 1)]})
            w2.kill()  # map output 1 is gone with its worker
            desc = _reduce_descriptor(plan, sid, 2, {0: "w1", 1: "w2"})
            w0.launch_tasks([desc])
            assert wait_for(lambda: len(driver.reports) == 1)
            err = driver.reports[0].error
            assert isinstance(err, FetchFailed)
            assert (err.shuffle_id, err.map_index, err.worker_id) == (sid, 1, "w2")
        finally:
            for w in workers:
                w.shutdown()

    def test_missing_block_on_live_peer_is_fetch_failed(self):
        _, driver, workers, plan, sid = _shuffle_fixture(2, maps=1)
        w0, w1 = workers
        try:
            # w1 is alive but never produced the block (eviction/drop).
            desc = _reduce_descriptor(plan, sid, 1, {0: "w1"})
            w0.launch_tasks([desc])
            assert wait_for(lambda: len(driver.reports) == 1)
            err = driver.reports[0].error
            assert isinstance(err, FetchFailed)
            assert (err.map_index, err.worker_id) == (0, "w1")
        finally:
            for w in workers:
                w.shutdown()

    def test_local_store_preferred_over_stale_location(self):
        # The block lives in w0's own store; map_locations stale-points at
        # a dead peer.  Local-first means no wire call and no failure.
        _, driver, workers, plan, sid = _shuffle_fixture(2, maps=1)
        w0, w1 = workers
        try:
            w0.blocks.put_map_output(0, sid, 0, {0: [("a", 1)]})
            w1.kill()
            desc = _reduce_descriptor(plan, sid, 1, {0: "w1"})
            w0.launch_tasks([desc])
            assert wait_for(lambda: len(driver.reports) == 1)
            assert driver.reports[0].succeeded
            assert w0.metrics.counter(COUNT_NET_FETCH_BATCHES).value == 0
        finally:
            for w in workers:
                w.shutdown()


# ----------------------------------------------------------------------
# Stage-blob caching
# ----------------------------------------------------------------------
def _descriptors(plan, n=2):
    return [
        TaskDescriptor(task_id=TaskId(0, 0, p), plan=plan, pre_scheduled=True)
        for p in range(n)
    ]


def _plan():
    return compile_plan(
        parallelize([1, 2, 3], 2).map(lambda x: x + 1), collect_action()
    )


class TestStageBlobs:
    def test_first_launch_ships_blob_second_ships_token(self):
        metrics = MetricsRegistry()
        sender = StageBlobSender(metrics)
        receiver = StageBlobReceiver()
        plan = _plan()

        launch, digests = sender.encode("w0", _descriptors(plan))
        assert len(launch.blobs) == 1 and len(digests) == 1
        decoded, missing = receiver.decode(launch)
        assert missing == [] and len(decoded) == 2
        sender.mark_shipped("w0", digests)

        launch2, _ = sender.encode("w0", _descriptors(plan))
        assert launch2.blobs == {}  # token-only
        decoded2, missing2 = receiver.decode(launch2)
        assert missing2 == []
        # Both rebuilt descriptors share the one cached plan object.
        assert decoded2[0].plan is decoded2[1].plan is decoded[0].plan
        assert metrics.counter(COUNT_STAGE_CACHE_HIT).value == 1
        assert metrics.counter(COUNT_STAGE_CACHE_MISS).value == 1

    def test_per_peer_shipped_sets(self):
        sender = StageBlobSender(MetricsRegistry())
        plan = _plan()
        _, digests = sender.encode("w0", _descriptors(plan))
        sender.mark_shipped("w0", digests)
        launch_w1, _ = sender.encode("w1", _descriptors(plan))
        assert len(launch_w1.blobs) == 1  # w1 never saw the blob

    def test_receiver_cache_loss_reports_missing(self):
        sender = StageBlobSender(MetricsRegistry())
        receiver = StageBlobReceiver()
        plan = _plan()
        launch, digests = sender.encode("w0", _descriptors(plan))
        receiver.decode(launch)
        sender.mark_shipped("w0", digests)
        receiver.clear()  # simulated worker restart
        token_only, _ = sender.encode("w0", _descriptors(plan))
        decoded, missing = receiver.decode(token_only)
        assert decoded is None and missing == digests
        # force= attaches the blob again and the receiver recovers.
        reship, _ = sender.encode("w0", _descriptors(plan), force=frozenset(missing))
        assert set(reship.blobs) == set(missing)
        decoded2, missing2 = receiver.decode(reship)
        assert missing2 == [] and len(decoded2) == 2

    def test_forget_peer_reships(self):
        sender = StageBlobSender(MetricsRegistry())
        plan = _plan()
        _, digests = sender.encode("w0", _descriptors(plan))
        sender.mark_shipped("w0", digests)
        sender.forget_peer("w0")
        launch, _ = sender.encode("w0", _descriptors(plan))
        assert len(launch.blobs) == 1

    def test_corrupt_blob_rejected_as_missing(self):
        receiver = StageBlobReceiver()
        sender = StageBlobSender(MetricsRegistry())
        plan = _plan()
        launch, _ = sender.encode("w0", _descriptors(plan))
        (digest,) = launch.blobs
        tampered = WireLaunch(
            descriptors=launch.descriptors, blobs={digest: b"poisoned bytes"}
        )
        decoded, missing = receiver.decode(tampered)
        assert decoded is None and missing == [digest]
        assert len(receiver) == 0

    def test_blob_digest_is_content_address(self):
        assert blob_digest(b"abc") == blob_digest(b"abc")
        assert blob_digest(b"abc") != blob_digest(b"abd")
        assert len(blob_digest(b"abc")) == 16


# ----------------------------------------------------------------------
# TcpTransport integration: stage_miss reship + re-announce invalidation
# ----------------------------------------------------------------------
class _LaunchSink:
    """Worker stand-in capturing decoded launch payloads."""

    def __init__(self):
        self.launches = []

    def launch_tasks(self, descriptors):
        self.launches.append(descriptors)
        return "accepted"

    def add(self, a, b):
        return a + b


def _tcp(metrics=None, hub_addr=None, name=None, **conf_kwargs):
    conf_kwargs.setdefault("backend", "tcp")
    conf_kwargs.setdefault("max_retries", 1)
    conf_kwargs.setdefault("retry_backoff_s", 0.001)
    return TcpTransport(
        metrics or MetricsRegistry(),
        conf=TransportConf(**conf_kwargs),
        hub_addr=hub_addr,
        name=name,
    )


class TestTcpDataPlane:
    def test_stage_miss_reship_recovers_lost_worker_cache(self):
        hub = _tcp(name="hub")
        peer = _tcp(hub_addr=hub.address, name="peer")
        try:
            sink = _LaunchSink()
            peer.register("worker", sink)
            plan = _plan()

            assert hub.call("worker", "launch_tasks", _descriptors(plan)) == "accepted"
            assert hub.call("worker", "launch_tasks", _descriptors(plan)) == "accepted"
            hits = hub.metrics.counter(COUNT_STAGE_CACHE_HIT).value
            misses = hub.metrics.counter(COUNT_STAGE_CACHE_MISS).value
            assert (hits, misses) == (1, 1)
            assert len(peer._stage_receiver) == 1

            # The worker loses its cache; the hub still believes the blob
            # is shipped, so the next launch is token-only, the worker
            # answers stage_miss, and the hub re-ships transparently.
            peer._stage_receiver.clear()
            rpc_before = hub.metrics.counter(COUNT_RPC_MESSAGES).value
            assert hub.call("worker", "launch_tasks", _descriptors(plan)) == "accepted"
            # Renegotiation is plumbing: one call() = one counted message.
            assert hub.metrics.counter(COUNT_RPC_MESSAGES).value == rpc_before + 1
            assert hub.metrics.counter(COUNT_STAGE_CACHE_MISS).value == misses + 1
            assert len(sink.launches) == 3
            for descriptors in sink.launches:
                assert [d.task_id.partition for d in descriptors] == [0, 1]
                assert descriptors[0].plan is descriptors[1].plan
        finally:
            peer.close()
            hub.close()

    def test_compressed_calls_cross_the_wire(self):
        data_plane = DataPlaneConf(compression="on", compress_threshold_bytes=1)
        hub = _tcp(name="hub", data_plane=data_plane)
        peer = _tcp(hub_addr=hub.address, name="peer", data_plane=data_plane)
        try:
            sink = _LaunchSink()
            peer.register("worker", sink)
            big = "x" * 50000
            assert hub.call("worker", "add", big, big) == big + big
            assert (
                hub.metrics.counter(COUNT_NET_BYTES_SAVED_COMPRESSION).value > 0
            )
        finally:
            peer.close()
            hub.close()

    def test_reannounce_at_new_port_reaches_new_server(self):
        hub = _tcp(name="hub")
        caller = _tcp(hub_addr=hub.address, name="caller")
        first = _tcp(hub_addr=hub.address, name="workerB-1")
        second = None
        try:
            first.register("workerB", _LaunchSink())
            assert caller.call("workerB", "add", 1, 2) == 3  # caches the addr
            old_addr = first.address
            first.close()  # worker process dies...
            second = _tcp(hub_addr=hub.address, name="workerB-2")
            second.register("workerB", _LaunchSink())  # ...and re-announces
            # Drop the idle pooled connection (as an idle timeout would).
            # The cached address is now stale: the dial is refused, which
            # delivered nothing, so the caller re-resolves through the
            # hub and safely retries once at the fresh address.
            caller.pool.invalidate(old_addr)
            assert caller.call("workerB", "add", 40, 2) == 42
        finally:
            for t in (second, first, caller, hub):
                if t is not None:
                    t.close()

    def test_stale_pooled_connection_fails_once_then_recovers(self):
        hub = _tcp(name="hub")
        caller = _tcp(hub_addr=hub.address, name="caller")
        first = _tcp(hub_addr=hub.address, name="workerB-1")
        second = None
        try:
            first.register("workerB", _LaunchSink())
            assert caller.call("workerB", "add", 1, 2) == 3
            first.close()
            second = _tcp(hub_addr=hub.address, name="workerB-2")
            second.register("workerB", _LaunchSink())
            # The pooled socket to the dead server EOFs mid-exchange.
            # That is never retried (the request may have been delivered),
            # but it invalidates the address cache and the pool...
            with pytest.raises(WorkerLost):
                caller.call("workerB", "add", 1, 1)
            # ...so the next call re-resolves and reaches the new server.
            assert caller.call("workerB", "add", 40, 2) == 42
        finally:
            for t in (second, first, caller, hub):
                if t is not None:
                    t.close()


# ----------------------------------------------------------------------
# End-to-end: same plan object re-run on a tcp cluster hits the cache
# ----------------------------------------------------------------------
class TestTcpClusterStageCache:
    def test_repeated_jobs_hit_stage_cache_and_survive_cache_loss(self):
        with make_cluster(
            SchedulingMode.DRIZZLE, workers=2, slots=2, transport="tcp"
        ) as cluster:
            dataset = parallelize(list(range(20)), 4).map(lambda x: x * 2)
            assert sorted(cluster.collect(dataset)) == sorted(
                x * 2 for x in range(20)
            )
            metrics = cluster.metrics
            misses = metrics.counter(COUNT_STAGE_CACHE_MISS).value
            assert misses > 0
            # Second job: new plan, new blob -> more misses, still correct.
            dataset2 = parallelize(list(range(10)), 2).map(lambda x: x + 1)
            assert sorted(cluster.collect(dataset2)) == list(range(1, 11))
            assert metrics.counter(COUNT_STAGE_CACHE_MISS).value > misses
